// Package tasking implements the shared-memory runtime the paper layers
// over MPI: an OmpSs/OpenMP-like system with
//
//   - a worker pool whose size can be changed while tasks run (the
//     malleability DLB exploits via omp_set_num_threads),
//   - parallel loops with dynamic chunk scheduling,
//   - a task graph supporting In/Out/Inout dependences plus the OpenMP 5.0
//     features the paper evaluates: mutexinoutset dependences and
//     dependence lists computed at run time ("multidependences"), and
//   - the three matrix assembly strategies compared in the paper:
//     Atomics, Coloring, and Multidependences.
package tasking

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a resizable worker pool. A Pool with maxWorkers goroutines can
// execute at most SetWorkers(n) tasks concurrently; n can be raised and
// lowered at any time, taking effect at task granularity (running tasks
// are never preempted). This models OpenMP thread teams resized through
// omp_set_num_threads, which is the mechanism DLB drives.
type Pool struct {
	mu       sync.Mutex
	workCond *sync.Cond // workers wait here for tasks / activation
	idleCond *sync.Cond // Wait() callers wait here

	queue   []func()
	target  int // current allowed concurrency
	max     int // spawned workers
	running int // tasks currently executing
	pending int // queued + running
	closed  bool
}

// NewPool creates a pool with max worker goroutines, initially all active.
func NewPool(max int) *Pool {
	if max < 1 {
		max = 1
	}
	p := &Pool{target: max, max: max}
	p.workCond = sync.NewCond(&p.mu)
	p.idleCond = sync.NewCond(&p.mu)
	for i := 0; i < max; i++ {
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for !p.closed && (id >= p.target || len(p.queue) == 0) {
			p.workCond.Wait()
		}
		if p.closed {
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		p.running++
		p.mu.Unlock()
		task()
		p.mu.Lock()
		p.running--
		p.pending--
		if p.pending == 0 {
			p.idleCond.Broadcast()
		}
	}
}

// Submit enqueues a task for execution.
func (p *Pool) Submit(task func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("tasking: Submit on closed pool")
	}
	p.queue = append(p.queue, task)
	p.pending++
	p.mu.Unlock()
	p.workCond.Broadcast()
}

// SetWorkers changes the allowed concurrency, clamped to [1, max].
// Raising it wakes parked workers immediately; lowering it takes effect
// as running tasks finish (no wakeup needed — DLB transitions are
// frequent, so avoiding spurious broadcasts matters).
func (p *Pool) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.max {
		n = p.max
	}
	p.mu.Lock()
	raised := n > p.target
	p.target = n
	p.mu.Unlock()
	if raised {
		p.workCond.Broadcast()
	}
}

// Workers reports the current allowed concurrency.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// MaxWorkers reports the pool's spawned worker count.
func (p *Pool) MaxWorkers() int { return p.max }

// Pending reports queued plus running tasks.
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Wait blocks until every submitted task has finished.
func (p *Pool) Wait() {
	p.mu.Lock()
	for p.pending > 0 {
		p.idleCond.Wait()
	}
	p.mu.Unlock()
}

// Close shuts the pool down after the queue drains. Tasks submitted after
// Close panic.
func (p *Pool) Close() {
	p.Wait()
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.workCond.Broadcast()
}

// ParallelFor executes body(lo,hi) over [0,n) split into dynamically
// scheduled chunks, blocking until the whole range is processed. The
// chunk size adapts to the pool's current concurrency; pass grain > 0 to
// force a chunk size. ParallelFor must not be called from inside a pool
// task (the pool does not support nested blocking).
func (p *Pool) ParallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if grain <= 0 {
		grain = n / (w * 8)
		if grain < 1 {
			grain = 1
		}
	}
	var next int64
	var wg sync.WaitGroup
	puller := func() {
		defer wg.Done()
		for {
			lo := int(atomic.AddInt64(&next, int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	// Submit one puller per potential worker so that concurrency raised
	// mid-loop (DLB lending) is exploited.
	nPullers := p.max
	if nPullers > (n+grain-1)/grain {
		nPullers = (n + grain - 1) / grain
	}
	wg.Add(nPullers)
	for i := 0; i < nPullers; i++ {
		p.Submit(puller)
	}
	wg.Wait()
}

// String describes the pool state for diagnostics.
func (p *Pool) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("pool{target=%d max=%d running=%d queued=%d}",
		p.target, p.max, p.running, len(p.queue))
}
