// Package tasking implements the shared-memory runtime the paper layers
// over MPI: an OmpSs/OpenMP-like system with
//
//   - a worker pool whose size can be changed while tasks run (the
//     malleability DLB exploits via omp_set_num_threads),
//   - parallel loops with dynamic chunk scheduling,
//   - a task graph supporting In/Out/Inout dependences plus the OpenMP 5.0
//     features the paper evaluates: mutexinoutset dependences and
//     dependence lists computed at run time ("multidependences"), and
//   - the three matrix assembly strategies compared in the paper:
//     Atomics, Coloring, and Multidependences.
package tasking

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a resizable worker pool. A Pool with maxWorkers goroutines can
// execute at most SetWorkers(n) tasks concurrently; n can be raised and
// lowered at any time, taking effect at task granularity (running tasks
// are never preempted). This models OpenMP thread teams resized through
// omp_set_num_threads, which is the mechanism DLB drives.
type Pool struct {
	mu       sync.Mutex
	workCond *sync.Cond // workers wait here for tasks / activation
	idleCond *sync.Cond // Wait() callers wait here

	queue   []func()
	target  int // current allowed concurrency
	max     int // spawned workers
	running int // tasks currently executing
	pending int // queued + running
	closed  bool
}

// NewPool creates a pool with max worker goroutines, initially all active.
func NewPool(max int) *Pool {
	if max < 1 {
		max = 1
	}
	p := &Pool{target: max, max: max}
	p.workCond = sync.NewCond(&p.mu)
	p.idleCond = sync.NewCond(&p.mu)
	for i := 0; i < max; i++ {
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for !p.closed && (id >= p.target || len(p.queue) == 0) {
			p.workCond.Wait()
		}
		if p.closed {
			return
		}
		task := p.queue[0]
		// Nil the popped slot before re-slicing: the backing array keeps
		// every element up to its capacity reachable, so leaving the
		// closure in place would pin it (and everything it captures) for
		// the lifetime of the queue's allocation.
		p.queue[0] = nil
		p.queue = p.queue[1:]
		if len(p.queue) == 0 {
			// Drained: drop the spent backing array so the next burst of
			// submissions starts from a fresh allocation instead of
			// appending into the tail of an ever-growing one.
			p.queue = nil
		}
		p.running++
		p.mu.Unlock()
		task()
		p.mu.Lock()
		p.running--
		p.pending--
		if p.pending == 0 {
			p.idleCond.Broadcast()
		}
	}
}

// Submit enqueues a task for execution.
func (p *Pool) Submit(task func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("tasking: Submit on closed pool")
	}
	p.queue = append(p.queue, task)
	p.pending++
	p.mu.Unlock()
	p.workCond.Broadcast()
}

// SetWorkers changes the allowed concurrency, clamped to [1, max].
// Raising it wakes parked workers immediately; lowering it takes effect
// as running tasks finish (no wakeup needed — DLB transitions are
// frequent, so avoiding spurious broadcasts matters).
func (p *Pool) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.max {
		n = p.max
	}
	p.mu.Lock()
	raised := n > p.target
	p.target = n
	p.mu.Unlock()
	if raised {
		p.workCond.Broadcast()
	}
}

// Workers reports the current allowed concurrency.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// MaxWorkers reports the pool's spawned worker count.
func (p *Pool) MaxWorkers() int { return p.max }

// Pending reports queued plus running tasks.
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Wait blocks until every submitted task has finished.
func (p *Pool) Wait() {
	p.mu.Lock()
	for p.pending > 0 {
		p.idleCond.Wait()
	}
	p.mu.Unlock()
}

// Close shuts the pool down after the queue drains. Tasks submitted after
// Close panic.
func (p *Pool) Close() {
	p.Wait()
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.workCond.Broadcast()
}

// ParallelFor executes body(lo,hi) over [0,n) split into dynamically
// scheduled chunks, blocking until the whole range is processed. The
// chunk size adapts to the pool's current concurrency; pass grain > 0 to
// force a chunk size — chunks are then the fixed ranges
// [k*grain, (k+1)*grain) regardless of the worker count, the property
// the deterministic la reductions rely on.
//
// The calling goroutine participates as a chunk puller, so ParallelFor
// is safe to call from inside a pool task: even when every worker is
// busy (including the degenerate case of a one-worker pool whose only
// worker is executing the caller), the caller drains the range itself
// and the loop completes instead of deadlocking on queued helpers that
// can never run. Helpers still queued when the range is exhausted
// execute later as no-ops.
//
// Concurrency semantics: this is OpenMP's master-participation model —
// the encountering thread joins the team — so a loop executes on up to
// SetWorkers(n)+1 goroutines: n pool workers plus the caller. The
// SetWorkers bound on Submit-ted tasks is unaffected. (The caller
// cannot be throttled without reintroducing the nested deadlock;
// TestParallelForConcurrencyBound pins the +1.)
func (p *Pool) ParallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if grain <= 0 {
		grain = n / (w * 8)
		if grain < 1 {
			grain = 1
		}
	}
	var next, done int64
	doneCh := make(chan struct{})
	puller := func() {
		for {
			lo := int(atomic.AddInt64(&next, int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
			if atomic.AddInt64(&done, int64(hi-lo)) == int64(n) {
				close(doneCh)
			}
		}
	}
	// Submit one helper per potential extra worker so that concurrency
	// raised mid-loop (DLB lending) is exploited; the caller is itself a
	// puller, so max-1 helpers saturate the pool.
	nHelpers := p.max - 1
	if maxUseful := (n+grain-1)/grain - 1; nHelpers > maxUseful {
		nHelpers = maxUseful
	}
	for i := 0; i < nHelpers; i++ {
		p.Submit(puller)
	}
	puller()
	// The caller ran out of chunks, but helpers may still be executing
	// theirs; completion is signalled by whichever puller finishes the
	// last chunk (possibly the caller itself, above).
	<-doneCh
}

// String describes the pool state for diagnostics.
func (p *Pool) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("pool{target=%d max=%d running=%d queued=%d}",
		p.target, p.max, p.running, len(p.queue))
}
