package tasking

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Strategy selects how the element loop of a FEM assembly is parallelized
// — the three alternatives of the paper's Figure 4 plus a serial
// reference.
type Strategy uint8

// Assembly strategies.
const (
	// StrategySerial runs the element loop sequentially (reference).
	StrategySerial Strategy = iota
	// StrategyAtomic runs one parallel loop over all elements and makes
	// every scattered update atomic (`omp parallel do` + `omp atomic`).
	StrategyAtomic
	// StrategyColoring partitions elements into conflict-free colors and
	// runs one plain parallel loop per color (Farhat & Crivelli 1989).
	// No atomics, but consecutive elements land on different threads, so
	// spatial locality is lost.
	StrategyColoring
	// StrategyMultidep maps each mesh subdomain to a task and lets tasks
	// of adjacent (node-sharing) subdomains exclude each other through
	// mutexinoutset dependences built with runtime iterators. No atomics,
	// and each task walks a contiguous, memory-ordered element range, so
	// spatial locality is preserved.
	StrategyMultidep
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case StrategySerial:
		return "Serial"
	case StrategyAtomic:
		return "Atomics"
	case StrategyColoring:
		return "Coloring"
	case StrategyMultidep:
		return "Multidep"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// MutexKeying selects how the multidependences strategy turns subdomain
// adjacency into mutexinoutset keys.
type MutexKeying uint8

const (
	// KeyNeighbors declares, for subdomain task i, mutexinoutset keys
	// {i} ∪ adj(i) — the formulation used by the paper's OmpSs code. Two
	// tasks at graph distance 2 (a common neighbor but no shared node)
	// are serialized too; that over-synchronization is part of the
	// construct's semantics and is ablated in the benchmarks.
	KeyNeighbors MutexKeying = iota
	// KeyEdges declares one key per adjacency edge, giving exact
	// pairwise exclusion: tasks conflict iff their subdomains share a
	// node.
	KeyEdges
)

// Scatter receives the contributions an element kernel produces. AddMat
// accumulates into a matrix entry, AddVec into a right-hand-side entry.
// Assembly strategies choose between a plain (non-atomic) and an atomic
// Scatter implementation supplied by the caller.
type Scatter struct {
	AddMat func(i, j int32, v float64)
	AddVec func(i int32, v float64)
}

// Kernel computes element e's local contribution and scatters it.
type Kernel func(e int, s *Scatter)

// AssemblyPlan carries the precomputed structures each strategy needs.
// Build one per (rank-mesh, strategy) and reuse it every time step; the
// coloring and sub-partition are geometry-only and do not change.
type AssemblyPlan struct {
	Strategy Strategy
	NumElems int

	// Coloring of the element conflict graph (StrategyColoring).
	Coloring *graph.Coloring

	// Subdomain labels per element, subdomain adjacency and keying
	// (StrategyMultidep).
	SubLabels []int32
	SubAdj    *graph.CSR
	NumSub    int
	Keying    MutexKeying

	subElems [][]int32 // elements per subdomain, ascending (locality)
}

// NewSerialPlan builds a plan for the serial reference.
func NewSerialPlan(nElems int) *AssemblyPlan {
	return &AssemblyPlan{Strategy: StrategySerial, NumElems: nElems}
}

// NewAtomicPlan builds a plan for the Atomics strategy.
func NewAtomicPlan(nElems int) *AssemblyPlan {
	return &AssemblyPlan{Strategy: StrategyAtomic, NumElems: nElems}
}

// NewColoringPlan builds a plan for the Coloring strategy from the
// element conflict graph (elements adjacent iff they share a node).
func NewColoringPlan(conflicts *graph.CSR) *AssemblyPlan {
	return &AssemblyPlan{
		Strategy: StrategyColoring,
		NumElems: conflicts.NumVertices(),
		Coloring: graph.BalancedColoring(conflicts),
	}
}

// NewMultidepPlan builds a plan for the Multidependences strategy from an
// element -> subdomain labeling and the subdomain adjacency graph.
func NewMultidepPlan(subLabels []int32, subAdj *graph.CSR, keying MutexKeying) *AssemblyPlan {
	numSub := subAdj.NumVertices()
	subElems := make([][]int32, numSub)
	for e, s := range subLabels {
		subElems[s] = append(subElems[s], int32(e))
	}
	for _, list := range subElems {
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
	return &AssemblyPlan{
		Strategy:  StrategyMultidep,
		NumElems:  len(subLabels),
		SubLabels: subLabels,
		SubAdj:    subAdj,
		NumSub:    numSub,
		Keying:    keying,
		subElems:  subElems,
	}
}

// Assemble runs kernel over every element according to the plan's
// strategy. plain must scatter without synchronization; atomicS must
// scatter atomically (used only by StrategyAtomic). Both must accumulate
// into the same underlying storage.
func Assemble(pool *Pool, plan *AssemblyPlan, kernel Kernel, plain, atomicS *Scatter) error {
	switch plan.Strategy {
	case StrategySerial:
		for e := 0; e < plan.NumElems; e++ {
			kernel(e, plain)
		}
		return nil

	case StrategyAtomic:
		if atomicS == nil {
			return fmt.Errorf("tasking: StrategyAtomic requires an atomic scatter")
		}
		pool.ParallelFor(plan.NumElems, 0, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				kernel(e, atomicS)
			}
		})
		return nil

	case StrategyColoring:
		if plan.Coloring == nil {
			return fmt.Errorf("tasking: StrategyColoring requires a coloring")
		}
		for _, elems := range plan.Coloring.ByColor {
			elems := elems
			pool.ParallelFor(len(elems), 0, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					kernel(int(elems[k]), plain)
				}
			})
		}
		return nil

	case StrategyMultidep:
		if plan.SubAdj == nil {
			return fmt.Errorf("tasking: StrategyMultidep requires subdomain adjacency")
		}
		var tg TaskGraph
		for s := 0; s < plan.NumSub; s++ {
			s := s
			deps := plan.mutexDeps(s)
			elems := plan.subElems[s]
			tg.Add(fmt.Sprintf("subdomain-%d", s), deps, func() {
				for _, e := range elems {
					kernel(int(e), plain)
				}
			})
		}
		return tg.Run(pool)
	}
	return fmt.Errorf("tasking: unknown strategy %v", plan.Strategy)
}

// mutexDeps builds the mutexinoutset dependence list for subdomain task s
// using a runtime iterator over the adjacency — the multidependences
// feature: the dependence count is known only at execution time.
func (plan *AssemblyPlan) mutexDeps(s int) []Dep {
	switch plan.Keying {
	case KeyEdges:
		return DepsFromIterator(Mutexinoutset, func(yield func(any)) {
			for _, nb := range plan.SubAdj.Neighbors(s) {
				a, b := int64(s), int64(nb)
				if a > b {
					a, b = b, a
				}
				yield(a<<32 | b)
			}
			yield(int64(s)<<32 | int64(s)) // self key serializes nothing but orders with itself
		})
	default: // KeyNeighbors — the paper's formulation
		return DepsFromIterator(Mutexinoutset, func(yield func(any)) {
			yield(int64(s))
			for _, nb := range plan.SubAdj.Neighbors(s) {
				yield(int64(nb))
			}
		})
	}
}
