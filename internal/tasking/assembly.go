package tasking

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Strategy selects how the element loop of a FEM assembly is parallelized
// — the three alternatives of the paper's Figure 4 plus a serial
// reference.
type Strategy uint8

// Assembly strategies.
const (
	// StrategySerial runs the element loop sequentially (reference).
	StrategySerial Strategy = iota
	// StrategyAtomic runs one parallel loop over all elements and makes
	// every scattered update atomic (`omp parallel do` + `omp atomic`).
	StrategyAtomic
	// StrategyColoring partitions elements into conflict-free colors and
	// runs one plain parallel loop per color (Farhat & Crivelli 1989).
	// No atomics, but consecutive elements land on different threads, so
	// spatial locality is lost.
	StrategyColoring
	// StrategyMultidep maps each mesh subdomain to a task and lets tasks
	// of adjacent (node-sharing) subdomains exclude each other through
	// mutexinoutset dependences built with runtime iterators. No atomics,
	// and each task walks a contiguous, memory-ordered element range, so
	// spatial locality is preserved.
	StrategyMultidep
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case StrategySerial:
		return "Serial"
	case StrategyAtomic:
		return "Atomics"
	case StrategyColoring:
		return "Coloring"
	case StrategyMultidep:
		return "Multidep"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// MutexKeying selects how the multidependences strategy turns subdomain
// adjacency into mutexinoutset keys.
type MutexKeying uint8

const (
	// KeyNeighbors declares, for subdomain task i, mutexinoutset keys
	// {i} ∪ adj(i) — the formulation used by the paper's OmpSs code. Two
	// tasks at graph distance 2 (a common neighbor but no shared node)
	// are serialized too; that over-synchronization is part of the
	// construct's semantics and is ablated in the benchmarks.
	KeyNeighbors MutexKeying = iota
	// KeyEdges declares one key per adjacency edge, giving exact
	// pairwise exclusion: tasks conflict iff their subdomains share a
	// node.
	KeyEdges
)

// Scatter receives the contributions an element kernel produces. AddMat
// accumulates into a matrix entry, AddVec into a right-hand-side entry.
// Assembly strategies choose between a plain (non-atomic) and an atomic
// Scatter implementation supplied by the caller.
type Scatter struct {
	AddMat func(i, j int32, v float64)
	AddVec func(i int32, v float64)
}

// Kernel computes element e's local contribution and scatters it.
type Kernel func(e int, s *Scatter)

// AssemblyPlan carries the precomputed structures each strategy needs.
// Build one per (rank-mesh, strategy) and reuse it every time step; the
// coloring and sub-partition are geometry-only and do not change.
type AssemblyPlan struct {
	Strategy Strategy
	NumElems int

	// Coloring of the element conflict graph (StrategyColoring).
	Coloring *graph.Coloring

	// Subdomain labels per element, subdomain adjacency and keying
	// (StrategyMultidep).
	SubLabels []int32
	SubAdj    *graph.CSR
	NumSub    int
	Keying    MutexKeying

	// LargestFirst enables the compiled graph's static release
	// priority: when several subdomain tasks become startable at once,
	// the one with the most elements is released first, shortening the
	// makespan tail. It changes the release order — and with it the
	// accumulation order of conflicting scatters — so it is off by
	// default (the golden contract: compilation reuses, never
	// reassociates) and ablated in the benchmarks. Set it before the
	// first Assemble/Compile; the compiled graph freezes the choice.
	LargestFirst bool

	subElems [][]int32 // elements per subdomain, ascending (locality)

	// compiled is the frozen multidep task graph, built on first use and
	// reused every step (the plan's geometry is static, so the graph is
	// too). Kernel and scatter flow through the graph's argument slots.
	compiled *CompiledGraph

	// Prebuilt loop bodies for the ParallelFor-based strategies: one
	// element-range body for Atomics, one per color for Coloring. Like
	// the compiled graph's task bodies they read the argument slots
	// below, so a steady-state Assemble submits only reused closures.
	atomicBody  func(lo, hi int)
	colorBodies []func(lo, hi int)

	// Argument slots the prebuilt bodies read; filled by Assemble
	// around the parallel section, never while one is in flight.
	kernel        Kernel
	plainScatter  *Scatter
	atomicScatter *Scatter
}

// NewSerialPlan builds a plan for the serial reference.
func NewSerialPlan(nElems int) *AssemblyPlan {
	return &AssemblyPlan{Strategy: StrategySerial, NumElems: nElems}
}

// NewAtomicPlan builds a plan for the Atomics strategy.
func NewAtomicPlan(nElems int) *AssemblyPlan {
	return &AssemblyPlan{Strategy: StrategyAtomic, NumElems: nElems}
}

// NewColoringPlan builds a plan for the Coloring strategy from the
// element conflict graph (elements adjacent iff they share a node).
func NewColoringPlan(conflicts *graph.CSR) *AssemblyPlan {
	return &AssemblyPlan{
		Strategy: StrategyColoring,
		NumElems: conflicts.NumVertices(),
		Coloring: graph.BalancedColoring(conflicts),
	}
}

// NewMultidepPlan builds a plan for the Multidependences strategy from an
// element -> subdomain labeling and the subdomain adjacency graph.
func NewMultidepPlan(subLabels []int32, subAdj *graph.CSR, keying MutexKeying) *AssemblyPlan {
	numSub := subAdj.NumVertices()
	subElems := make([][]int32, numSub)
	for e, s := range subLabels {
		subElems[s] = append(subElems[s], int32(e))
	}
	for _, list := range subElems {
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
	return &AssemblyPlan{
		Strategy:  StrategyMultidep,
		NumElems:  len(subLabels),
		SubLabels: subLabels,
		SubAdj:    subAdj,
		NumSub:    numSub,
		Keying:    keying,
		subElems:  subElems,
	}
}

// Assemble runs kernel over every element according to the plan's
// strategy. plain must scatter without synchronization; atomicS must
// scatter atomically (used only by StrategyAtomic). Both must accumulate
// into the same underlying storage.
//
// Assemble routes kernel and scatters through the plan's compiled run
// structures (built on first use, reused every step), so a plan may be
// assembled by one goroutine at a time — the per-rank ownership every
// caller in this codebase already has.
func Assemble(pool *Pool, plan *AssemblyPlan, kernel Kernel, plain, atomicS *Scatter) error {
	switch plan.Strategy {
	case StrategySerial:
		for e := 0; e < plan.NumElems; e++ {
			kernel(e, plain)
		}
		return nil

	case StrategyAtomic:
		if atomicS == nil {
			return fmt.Errorf("tasking: StrategyAtomic requires an atomic scatter")
		}
		if plan.atomicBody == nil {
			plan.buildAtomicBody()
		}
		plan.kernel, plan.atomicScatter = kernel, atomicS
		pool.ParallelFor(plan.NumElems, 0, plan.atomicBody)
		plan.kernel, plan.atomicScatter = nil, nil
		return nil

	case StrategyColoring:
		if plan.Coloring == nil {
			return fmt.Errorf("tasking: StrategyColoring requires a coloring")
		}
		if plan.colorBodies == nil {
			plan.buildColorBodies()
		}
		plan.kernel, plan.plainScatter = kernel, plain
		for c, elems := range plan.Coloring.ByColor {
			pool.ParallelFor(len(elems), 0, plan.colorBodies[c])
		}
		plan.kernel, plan.plainScatter = nil, nil
		return nil

	case StrategyMultidep:
		if plan.SubAdj == nil {
			return fmt.Errorf("tasking: StrategyMultidep requires subdomain adjacency")
		}
		// The compiled graph is built once per plan and reused every
		// step; the kernel and scatter reach the prebuilt task bodies
		// through the graph's argument slots, so the steady-state
		// assembly performs zero heap allocations — matching the other
		// strategies (and the OmpSs runtime the paper measures, which
		// does not rebuild its task metadata per time step).
		cg := plan.Compiled()
		cg.kernel, cg.plain = kernel, plain
		err := cg.Run(pool)
		cg.kernel, cg.plain = nil, nil
		return err
	}
	return fmt.Errorf("tasking: unknown strategy %v", plan.Strategy)
}

// subdomainName formats multidep task names lazily: only the panic-error
// path pays for the string.
func subdomainName(i int) string { return fmt.Sprintf("subdomain-%d", i) }

// TaskGraph builds the uncompiled task-graph front-end for a multidep
// plan: one task per subdomain whose mutexinoutset dependences come from
// the runtime iterator over the subdomain adjacency, capturing kernel
// and scatter directly. Every call builds a fresh graph — this is the
// allocating path that Compiled replaces in the step loop; it remains
// the reference for the compiled-vs-fresh equivalence tests and A/B
// benchmarks.
func (plan *AssemblyPlan) TaskGraph(kernel Kernel, plain *Scatter) *TaskGraph {
	tg := &TaskGraph{NameFn: subdomainName}
	for s := 0; s < plan.NumSub; s++ {
		elems := plan.subElems[s]
		tg.Add("", plan.mutexDeps(s), func() {
			for _, e := range elems {
				kernel(int(e), plain)
			}
		})
	}
	return tg
}

// Compiled returns the plan's compiled multidep task graph, building it
// on first use. Only meaningful for StrategyMultidep plans.
func (plan *AssemblyPlan) Compiled() *CompiledGraph {
	if plan.compiled == nil {
		plan.compiled = plan.newCompiled()
	}
	return plan.compiled
}

// Compile eagerly builds the strategy's reusable run structures: the
// compiled task graph for Multidep, the prebuilt loop bodies for
// Atomics and Coloring. Assemble compiles lazily on first use, so
// calling Compile is optional — it just moves the one-time cost out of
// the first step.
func (plan *AssemblyPlan) Compile() {
	switch plan.Strategy {
	case StrategyMultidep:
		if plan.SubAdj != nil {
			plan.Compiled()
		}
	case StrategyAtomic:
		if plan.atomicBody == nil {
			plan.buildAtomicBody()
		}
	case StrategyColoring:
		if plan.Coloring != nil && plan.colorBodies == nil {
			plan.buildColorBodies()
		}
	}
}

// buildAtomicBody prebuilds the Atomics element-range body; kernel and
// scatter flow through the plan's slots.
func (plan *AssemblyPlan) buildAtomicBody() {
	plan.atomicBody = func(lo, hi int) {
		k, sc := plan.kernel, plan.atomicScatter
		for e := lo; e < hi; e++ {
			k(e, sc)
		}
	}
}

// buildColorBodies prebuilds one element-range body per color.
func (plan *AssemblyPlan) buildColorBodies() {
	plan.colorBodies = make([]func(lo, hi int), len(plan.Coloring.ByColor))
	for c, elems := range plan.Coloring.ByColor {
		elems := elems
		plan.colorBodies[c] = func(lo, hi int) {
			k, sc := plan.kernel, plan.plainScatter
			for i := lo; i < hi; i++ {
				k(int(elems[i]), sc)
			}
		}
	}
}

// newCompiled compiles the plan's task graph with slot-reading bodies
// and the static largest-subdomain-first release priority.
func (plan *AssemblyPlan) newCompiled() *CompiledGraph {
	cg := &CompiledGraph{}
	tg := TaskGraph{NameFn: subdomainName}
	for s := 0; s < plan.NumSub; s++ {
		elems := plan.subElems[s]
		// The body reads the kernel/scatter slots Assemble fills around
		// Run, so one compiled closure serves every step.
		tg.Add("", plan.mutexDeps(s), func() {
			k, sc := cg.kernel, cg.plain
			for _, e := range elems {
				k(int(e), sc)
			}
		})
	}
	tg.compileInto(cg)
	if plan.LargestFirst {
		// Static priority: release larger subdomains first. Priorities
		// only change which startable task acquires its keys first —
		// never whether two conflicting tasks may overlap — so
		// exclusion semantics are unaffected. Ties keep ascending
		// subdomain order, so the order is deterministic.
		cg.priority = true
		sort.SliceStable(cg.order, func(a, b int) bool {
			return len(plan.subElems[cg.order[a]]) > len(plan.subElems[cg.order[b]])
		})
	}
	return cg
}

// mutexDeps builds the mutexinoutset dependence list for subdomain task s
// using a runtime iterator over the adjacency — the multidependences
// feature: the dependence count is known only at execution time.
func (plan *AssemblyPlan) mutexDeps(s int) []Dep {
	switch plan.Keying {
	case KeyEdges:
		return DepsFromIterator(Mutexinoutset, func(yield func(any)) {
			for _, nb := range plan.SubAdj.Neighbors(s) {
				a, b := int64(s), int64(nb)
				if a > b {
					a, b = b, a
				}
				yield(a<<32 | b)
			}
			yield(int64(s)<<32 | int64(s)) // self key serializes nothing but orders with itself
		})
	default: // KeyNeighbors — the paper's formulation
		return DepsFromIterator(Mutexinoutset, func(yield func(any)) {
			yield(int64(s))
			for _, nb := range plan.SubAdj.Neighbors(s) {
				yield(int64(nb))
			}
		})
	}
}
