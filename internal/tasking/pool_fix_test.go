package tasking

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolQueueSlotsReleased guards the queue memory-retention fix: a
// popped task closure must not stay reachable through the queue's
// backing array, or everything the closure captures (particle buffers,
// matrices) is pinned until the array is reallocated.
func TestPoolQueueSlotsReleased(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	pool.Submit(func() {
		close(started)
		<-release
	})
	<-started // the single worker is now parked inside the blocker

	var ran int32
	for i := 0; i < 8; i++ {
		pool.Submit(func() { atomic.AddInt32(&ran, 1) })
	}
	pool.mu.Lock()
	backing := pool.queue // snapshot of the 8 queued closures
	pool.mu.Unlock()
	if len(backing) != 8 {
		t.Fatalf("queued %d tasks, want 8", len(backing))
	}

	close(release)
	pool.Wait()
	if atomic.LoadInt32(&ran) != 8 {
		t.Fatalf("ran %d/8 tasks", ran)
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	for i, slot := range backing {
		if slot.fn != nil {
			t.Fatalf("backing slot %d still holds its task closure after pop", i)
		}
	}
}

// TestPoolQueueRewindsBackingOnDrain checks that a drained queue rewinds
// and reuses its backing array: capacity stays bounded by the burst size
// across many rounds (no ever-growing tail), and every popped slot is nil
// so the retained capacity pins nothing.
func TestPoolQueueRewindsBackingOnDrain(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	for round := 0; round < 8; round++ {
		for i := 0; i < 32; i++ {
			pool.Submit(func() {})
		}
		pool.Wait()
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if c := cap(pool.queue); c > 64 {
		t.Fatalf("drained queue backing grew to cap %d after 8 rounds of 32 submissions", c)
	}
	for i, slot := range pool.queue[:cap(pool.queue)] {
		if slot.fn != nil {
			t.Fatalf("drained queue retains a task closure in backing slot %d", i)
		}
	}
}

// TestParallelForZeroAllocSteadyState pins the zero-allocation contract
// of the loop machinery: after warmup (loop states on the freelist, the
// queue backing grown), a ParallelFor with a prebuilt body allocates
// nothing — the property the solver kernels and the particle step rely
// on for an allocation-free steady state.
func TestParallelForZeroAllocSteadyState(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pool := NewPool(workers)
		var sink int64
		body := func(lo, hi int) { atomic.AddInt64(&sink, int64(hi-lo)) }
		for i := 0; i < 20; i++ { // warm the freelist and queue backing
			pool.ParallelFor(4096, 64, body)
		}
		avg := testing.AllocsPerRun(50, func() {
			pool.ParallelFor(4096, 64, body)
		})
		if avg != 0 {
			t.Errorf("workers=%d: ParallelFor allocates %.2f objects per call in steady state, want 0", workers, avg)
		}
		pool.Close()
	}
}

// TestParallelForInsidePoolTask is the nested-deadlock regression: a
// ParallelFor issued from inside a pool task used to hang forever on a
// saturated pool, because its helper pullers could never be scheduled.
// The calling goroutine now participates as a puller, so the loop must
// complete even on a one-worker pool whose only worker is the caller.
func TestParallelForInsidePoolTask(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()

	var sum int64
	done := make(chan struct{})
	pool.Submit(func() {
		defer close(done)
		pool.ParallelFor(1000, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&sum, int64(i))
			}
		})
	})
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ParallelFor inside a pool task deadlocked")
	}
	if want := int64(1000 * 999 / 2); atomic.LoadInt64(&sum) != want {
		t.Fatalf("nested loop covered sum %d, want %d", sum, want)
	}
	pool.Wait() // stale helper no-ops must drain cleanly
}

// TestParallelForDoublyNested exercises ParallelFor inside a ParallelFor
// body — the shape the threaded solver kernels can hit when a pool task
// reaches a vector kernel.
func TestParallelForDoublyNested(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()

	var count int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		pool.ParallelFor(8, 1, func(lo, hi int) {
			pool.ParallelFor(100, 0, func(ilo, ihi int) {
				atomic.AddInt64(&count, int64(ihi-ilo))
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("doubly nested ParallelFor deadlocked")
	}
	if atomic.LoadInt64(&count) != 800 {
		t.Fatalf("covered %d iterations, want 800", count)
	}
}

// TestParallelForConcurrencyBound pins the loop's team size: at most
// SetWorkers(n) pool workers plus the participating caller run bodies
// concurrently (OpenMP master-participation semantics). A throttled
// pool must not see the whole worker complement join the loop.
func TestParallelForConcurrencyBound(t *testing.T) {
	pool := NewPool(8)
	defer pool.Close()
	pool.SetWorkers(2)
	var cur, max int32
	pool.ParallelFor(256, 1, func(lo, hi int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		atomic.AddInt32(&cur, -1)
	})
	if got := atomic.LoadInt32(&max); got > 3 {
		t.Fatalf("observed %d concurrent loop bodies with SetWorkers(2)+caller, want <= 3", got)
	}
}

// TestParallelForFixedGrainChunks pins the fixed-chunk contract the
// deterministic reductions rely on: with grain > 0 the chunks are
// exactly [k*grain, min((k+1)*grain, n)) whatever the worker count.
func TestParallelForFixedGrainChunks(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		pool := NewPool(workers)
		const n, grain = 1037, 64
		seen := make([]int32, (n+grain-1)/grain)
		pool.ParallelFor(n, grain, func(lo, hi int) {
			if lo%grain != 0 {
				t.Errorf("chunk start %d not a multiple of grain %d", lo, grain)
			}
			want := lo + grain
			if want > n {
				want = n
			}
			if hi != want {
				t.Errorf("chunk [%d,%d), want [%d,%d)", lo, hi, lo, want)
			}
			atomic.AddInt32(&seen[lo/grain], 1)
		})
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: chunk %d executed %d times", workers, k, c)
			}
		}
		pool.Close()
	}
}
