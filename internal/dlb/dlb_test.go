package dlb

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simmpi"
	"repro/internal/tasking"
)

// fakePool records SetWorkers calls without real goroutines.
type fakePool struct {
	mu     sync.Mutex
	target int
	max    int
}

func newFakePool(n, max int) *fakePool { return &fakePool{target: n, max: max} }

func (f *fakePool) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > f.max {
		n = f.max
	}
	f.mu.Lock()
	f.target = n
	f.mu.Unlock()
}

func (f *fakePool) Workers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.target
}

func (f *fakePool) MaxWorkers() int { return f.max }

func TestLendAndReclaim(t *testing.T) {
	d := New(true)
	pa := newFakePool(2, 8)
	pb := newFakePool(2, 8)
	if err := d.Register(0, 0, pa, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, 0, pb, 2); err != nil {
		t.Fatal(err)
	}

	d.IntoBlockingCall(0)
	if got := pb.Workers(); got != 4 {
		t.Fatalf("after lend, rank 1 workers = %d, want 4", got)
	}
	if got := pa.Workers(); got != 1 {
		t.Fatalf("blocked rank pool = %d, want idle 1", got)
	}

	d.OutOfBlockingCall(0)
	if got := pb.Workers(); got != 2 {
		t.Fatalf("after reclaim, rank 1 workers = %d, want 2", got)
	}
	if got := pa.Workers(); got != 2 {
		t.Fatalf("after reclaim, rank 0 workers = %d, want 2", got)
	}

	s := d.Snapshot()
	if s.Lends != 1 || s.Reclaims != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.PeakWorkers[1] != 4 {
		t.Fatalf("peak workers of rank 1 = %d, want 4", s.PeakWorkers[1])
	}
}

func TestLendDistributionWithRemainder(t *testing.T) {
	d := New(true)
	pools := make([]*fakePool, 4)
	for i := range pools {
		pools[i] = newFakePool(3, 12)
		if err := d.Register(i, 0, pools[i], 3); err != nil {
			t.Fatal(err)
		}
	}
	// Rank 3 blocks: its 3 cores split over ranks 0,1,2 -> 4,4,4.
	d.IntoBlockingCall(3)
	total := 0
	for i := 0; i < 3; i++ {
		total += pools[i].Workers()
	}
	if total != 12 {
		t.Fatalf("active workers sum to %d, want 12 (9 owned + 3 lent)", total)
	}
	// Rank 2 blocks too: 6 lent cores over ranks 0,1 -> 6,6.
	d.IntoBlockingCall(2)
	if pools[0].Workers()+pools[1].Workers() != 12 {
		t.Fatalf("after second lend: %d + %d != 12", pools[0].Workers(), pools[1].Workers())
	}
	d.OutOfBlockingCall(2)
	d.OutOfBlockingCall(3)
	for i, p := range pools {
		if p.Workers() != 3 {
			t.Fatalf("rank %d not restored: %d", i, p.Workers())
		}
	}
}

func TestNoCrossNodeLending(t *testing.T) {
	d := New(true)
	p0 := newFakePool(2, 8)
	p1 := newFakePool(2, 8)
	if err := d.Register(0, 0, p0, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, 1, p1, 2); err != nil { // different node
		t.Fatal(err)
	}
	d.IntoBlockingCall(0)
	if p1.Workers() != 2 {
		t.Fatalf("cross-node lending occurred: %d", p1.Workers())
	}
}

func TestDisabledDLBIsNoop(t *testing.T) {
	d := New(false)
	p0 := newFakePool(2, 8)
	p1 := newFakePool(2, 8)
	_ = d.Register(0, 0, p0, 2)
	_ = d.Register(1, 0, p1, 2)
	d.IntoBlockingCall(0)
	if p1.Workers() != 2 {
		t.Fatal("disabled DLB must not lend")
	}
	if d.Enabled() {
		t.Fatal("Enabled() should be false")
	}
	s := d.Snapshot()
	if s.Lends != 0 {
		t.Fatal("disabled DLB recorded lends")
	}
}

func TestAllBlockedRestoresOwners(t *testing.T) {
	d := New(true)
	p0 := newFakePool(2, 8)
	p1 := newFakePool(2, 8)
	_ = d.Register(0, 0, p0, 2)
	_ = d.Register(1, 0, p1, 2)
	d.IntoBlockingCall(0)
	d.IntoBlockingCall(1)
	if p0.Workers() != 2 || p1.Workers() != 2 {
		t.Fatalf("all-blocked should restore owners: %d %d", p0.Workers(), p1.Workers())
	}
	d.OutOfBlockingCall(0)
	d.OutOfBlockingCall(1)
}

func TestRegisterErrors(t *testing.T) {
	d := New(true)
	p := newFakePool(1, 2)
	if err := d.Register(0, 0, p, 0); err == nil {
		t.Fatal("want error for zero cores")
	}
	if err := d.Register(0, 0, p, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(0, 0, p, 1); err == nil {
		t.Fatal("want error for duplicate rank")
	}
	if d.WorkersOf(99) != 0 {
		t.Fatal("unknown rank should report 0 workers")
	}
}

func TestIdempotentHooks(t *testing.T) {
	d := New(true)
	p0 := newFakePool(2, 8)
	p1 := newFakePool(2, 8)
	_ = d.Register(0, 0, p0, 2)
	_ = d.Register(1, 0, p1, 2)
	d.IntoBlockingCall(0)
	d.IntoBlockingCall(0) // double-enter must not double-lend
	if p1.Workers() != 4 {
		t.Fatalf("workers %d, want 4", p1.Workers())
	}
	d.OutOfBlockingCall(0)
	d.OutOfBlockingCall(0)
	if p1.Workers() != 2 {
		t.Fatalf("workers %d, want 2", p1.Workers())
	}
	s := d.Snapshot()
	if s.Lends != 1 || s.Reclaims != 1 {
		t.Fatalf("hooks not idempotent: %+v", s)
	}
}

// Integration: an imbalanced MPI+tasking run where rank 0 finishes early
// and blocks in a receive; DLB lends its cores to rank 1, which must
// observe increased pool concurrency while rank 0 waits.
func TestDLBWithSimMPIAndRealPools(t *testing.T) {
	d := New(true)
	world, err := simmpi.NewWorld(2, simmpi.WithRanksPerNode(2), simmpi.WithBlockingHooks(d))
	if err != nil {
		t.Fatal(err)
	}
	pools := [2]*tasking.Pool{tasking.NewPool(4), tasking.NewPool(4)}
	defer pools[0].Close()
	defer pools[1].Close()
	pools[0].SetWorkers(2)
	pools[1].SetWorkers(2)
	if err := d.Register(0, 0, pools[0], 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, 0, pools[1], 2); err != nil {
		t.Fatal(err)
	}

	var rank1Peak int32
	err = world.Run(func(r *simmpi.Rank) {
		pool := pools[r.ID()]
		switch r.ID() {
		case 0:
			// Tiny workload, then block waiting for rank 1.
			pool.ParallelFor(4, 1, func(lo, hi int) {})
			r.Comm.Recv(1, 1)
		case 1:
			// Heavy workload; record the pool's target while running.
			time.Sleep(2 * time.Millisecond) // let rank 0 block
			pool.ParallelFor(64, 1, func(lo, hi int) {
				w := int32(pool.Workers())
				for {
					p := atomic.LoadInt32(&rank1Peak)
					if w <= p || atomic.CompareAndSwapInt32(&rank1Peak, p, w) {
						break
					}
				}
				time.Sleep(100 * time.Microsecond)
			})
			r.Comm.Send(0, 1, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&rank1Peak); got < 3 {
		t.Fatalf("rank 1 never borrowed cores: peak workers %d, want >= 3", got)
	}
	if pools[1].Workers() != 2 {
		t.Fatalf("cores not reclaimed after run: %d", pools[1].Workers())
	}
}

func TestMigrationLogRecordsEffectiveResizes(t *testing.T) {
	d := New(true)
	pa := newFakePool(2, 8)
	pb := newFakePool(2, 8)
	if err := d.Register(0, 0, pa, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, 0, pb, 2); err != nil {
		t.Fatal(err)
	}
	if len(d.Migrations()) != 0 {
		t.Fatalf("migrations before any blocking call: %v", d.Migrations())
	}

	d.IntoBlockingCall(0) // rank 0 lends: rank 1 -> 4 workers, rank 0 -> 1
	migs := d.Migrations()
	if len(migs) == 0 {
		t.Fatal("no migrations recorded for an effective resize")
	}
	sawBorrow := false
	for _, m := range migs {
		if m.Rank == 1 && m.Workers == 4 {
			sawBorrow = true
		}
		if m.At < 0 {
			t.Fatalf("negative migration offset: %v", m.At)
		}
	}
	if !sawBorrow {
		t.Fatalf("rank 1 borrow not logged: %v", migs)
	}

	// A redundant rebalance (same targets) must not grow the log.
	before := len(d.Migrations())
	d.IntoBlockingCall(0) // idempotent hook: already blocked
	if got := len(d.Migrations()); got != before {
		t.Fatalf("redundant transition grew the log: %d -> %d", before, got)
	}

	d.OutOfBlockingCall(0) // reclaim: both back to 2... rank 0 1->2, rank 1 4->2
	after := d.Migrations()
	if len(after) <= before {
		t.Fatal("reclaim recorded no migrations")
	}
	// The returned slice is a copy: mutating it must not corrupt the log.
	after[0].Workers = -99
	if d.Migrations()[0].Workers == -99 {
		t.Fatal("Migrations returned internal storage")
	}
}

func TestDisabledDLBLogsNoMigrations(t *testing.T) {
	d := New(false)
	p := newFakePool(2, 8)
	if err := d.Register(0, 0, p, 2); err != nil {
		t.Fatal(err)
	}
	d.IntoBlockingCall(0)
	d.OutOfBlockingCall(0)
	if n := len(d.Migrations()); n != 0 {
		t.Fatalf("disabled DLB logged %d migrations", n)
	}
}
