// Package dlb reimplements the Dynamic Load Balancing library (DLB) with
// its LeWI ("lend when idle") policy, the paper's second runtime
// technique. DLB is transparent to the application: it observes blocking
// MPI calls through the PMPI-style hooks exposed by simmpi and reacts by
// resizing the OpenMP-like worker pools of the processes sharing a node.
//
// When a process enters a blocking MPI call it lends its cores to the
// other processes on the same node; when the call completes it reclaims
// them. Lending never crosses node boundaries — cores are a node-local
// resource — which is why the placement of fluid and particle ranks
// across nodes matters in the coupled-mode experiments (Figures 8-11).
package dlb

import (
	"fmt"
	"sync"
	"time"
)

// Resizable is the pool surface DLB drives; *tasking.Pool satisfies it.
type Resizable interface {
	SetWorkers(n int)
	Workers() int
	MaxWorkers() int
}

// Stats counts DLB activity for reporting and tests.
type Stats struct {
	Lends    int // blocking-call entries that lent cores
	Reclaims int // blocking-call exits that took cores back
	// PeakWorkers records the largest worker count each rank reached
	// thanks to borrowed cores.
	PeakWorkers map[int]int
}

// Migration records one pool resize DLB actually performed: Rank's
// worker pool changed to Workers at wall-clock offset At from the
// instance's creation. Redundant rebalances (same target) record
// nothing, so the log is exactly the sequence of effective LeWI
// migrations — the events the telemetry store persists per run.
type Migration struct {
	Rank    int
	Workers int
	At      time.Duration
}

// maxMigrations bounds the migration log; runs that rebalance more
// often than this keep the earliest entries and stop recording.
const maxMigrations = 4096

// DLB is the library instance for one run. Register every rank, then
// install it as the world's BlockingHooks (it implements
// simmpi.BlockingHooks).
type DLB struct {
	mu      sync.Mutex
	enabled bool
	nodes   map[int]*nodeState
	ranks   map[int]*procState
	stats   Stats
	start   time.Time
	migs    []Migration
}

type nodeState struct {
	procs []*procState // registration order
}

type procState struct {
	rank    int
	node    *nodeState
	pool    Resizable
	owned   int
	blocked bool
	target  int // last worker count pushed to the pool (0 = unknown)
}

// setTarget pushes a worker count to the pool only when it changed —
// rebalances run on every blocking call, so redundant pool wakeups are
// the dominant overhead otherwise. Reports whether the pool was resized.
func (p *procState) setTarget(n int) bool {
	if p.target == n {
		return false
	}
	p.target = n
	p.pool.SetWorkers(n)
	return true
}

// setTargetLocked resizes p's pool through setTarget and logs the
// migration when the target actually changed. Called with d.mu held.
func (d *DLB) setTargetLocked(p *procState, n int) {
	if !p.setTarget(n) {
		return
	}
	if len(d.migs) < maxMigrations {
		d.migs = append(d.migs, Migration{Rank: p.rank, Workers: n, At: time.Since(d.start)})
	}
}

// New creates a DLB instance; pass enabled=false for the "original"
// (no load balancing) configuration so call sites stay identical.
func New(enabled bool) *DLB {
	return &DLB{
		enabled: enabled,
		nodes:   make(map[int]*nodeState),
		ranks:   make(map[int]*procState),
		stats:   Stats{PeakWorkers: make(map[int]int)},
		start:   time.Now(),
	}
}

// Enabled reports whether lending is active.
func (d *DLB) Enabled() bool { return d.enabled }

// Register binds a rank living on the given node to its worker pool and
// its owned core count. Must be called before the rank communicates.
func (d *DLB) Register(rank, node int, pool Resizable, ownedCores int) error {
	if ownedCores < 1 {
		return fmt.Errorf("dlb: rank %d must own at least one core", rank)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.ranks[rank]; dup {
		return fmt.Errorf("dlb: rank %d registered twice", rank)
	}
	ns := d.nodes[node]
	if ns == nil {
		ns = &nodeState{}
		d.nodes[node] = ns
	}
	p := &procState{rank: rank, node: ns, pool: pool, owned: ownedCores}
	ns.procs = append(ns.procs, p)
	d.ranks[rank] = p
	return nil
}

// IntoBlockingCall implements the PMPI hook: the rank is about to block,
// so its cores become lendable (LeWI).
func (d *DLB) IntoBlockingCall(rank int) {
	if !d.enabled {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.ranks[rank]
	if p == nil || p.blocked {
		return
	}
	p.blocked = true
	d.stats.Lends++
	d.rebalanceLocked(p.node)
}

// OutOfBlockingCall implements the PMPI hook: the rank resumed, so it
// reclaims its owned cores.
func (d *DLB) OutOfBlockingCall(rank int) {
	if !d.enabled {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.ranks[rank]
	if p == nil || !p.blocked {
		return
	}
	p.blocked = false
	d.stats.Reclaims++
	d.rebalanceLocked(p.node)
}

// rebalanceLocked recomputes the core assignment of one node: every
// active (non-blocked) process keeps its owned cores and the owned cores
// of blocked processes are distributed round-robin among the active ones.
// The recomputation is idempotent, so it can run on every transition.
func (d *DLB) rebalanceLocked(ns *nodeState) {
	lendPot := 0
	var active []*procState
	for _, p := range ns.procs {
		if p.blocked {
			lendPot += p.owned
		} else {
			active = append(active, p)
		}
	}
	if len(active) == 0 {
		// Everyone blocked: nothing to lend to; restore owners.
		for _, p := range ns.procs {
			d.setTargetLocked(p, p.owned)
		}
		return
	}
	share := lendPot / len(active)
	rem := lendPot % len(active)
	for i, p := range active {
		extra := share
		if i < rem {
			extra++
		}
		target := p.owned + extra
		d.setTargetLocked(p, target)
		if w := p.pool.Workers(); w > d.stats.PeakWorkers[p.rank] {
			d.stats.PeakWorkers[p.rank] = w
		}
	}
	// Blocked processes fall back to a single (idle) worker slot so any
	// straggler tasks still drain.
	for _, p := range ns.procs {
		if p.blocked {
			d.setTargetLocked(p, 1)
		}
	}
}

// Snapshot returns a copy of the activity counters.
func (d *DLB) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := Stats{
		Lends:       d.stats.Lends,
		Reclaims:    d.stats.Reclaims,
		PeakWorkers: make(map[int]int, len(d.stats.PeakWorkers)),
	}
	for k, v := range d.stats.PeakWorkers {
		out.PeakWorkers[k] = v
	}
	return out
}

// Migrations returns a copy of the effective worker-migration log, in
// the order the resizes happened.
func (d *DLB) Migrations() []Migration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Migration(nil), d.migs...)
}

// RestoreTarget pushes a checkpointed worker target back onto a rank's
// pool through DLB's own bookkeeping, so a resumed run restarts from the
// allocation it was killed with instead of the registration default. It
// is best-effort state — the next rebalance may move the target again —
// and is not logged as a migration (it is a restore, not a decision).
func (d *DLB) RestoreTarget(rank, workers int) {
	if workers < 1 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p := d.ranks[rank]; p != nil {
		p.setTarget(workers)
	}
}

// WorkersOf reports the current worker target of a rank's pool (testing
// and tracing aid).
func (d *DLB) WorkersOf(rank int) int {
	d.mu.Lock()
	p := d.ranks[rank]
	d.mu.Unlock()
	if p == nil {
		return 0
	}
	return p.pool.Workers()
}
