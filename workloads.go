package repro

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/coupling"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/navierstokes"
	"repro/internal/particles"
	"repro/internal/partition"
	"repro/internal/simmpi"
	"repro/internal/tasking"
	"repro/internal/trace"
	"repro/scenario"
)

// Example workload scenario names (tag "example"). The examples/ mains
// are thin wrappers over these registrations, so the runnable examples
// cannot drift from the library.
const (
	ScenarioQuickstart  = "quickstart"
	ScenarioRespiratory = "respiratory"
	ScenarioPollutant   = "pollutant"
	ScenarioCoupledDLB  = "coupled_dlb"
)

func registerExampleScenarios() {
	reg := scenario.MustRegister

	reg(scenario.New(ScenarioQuickstart,
		"Minimal end-to-end run: generate an airway mesh, simulate fluid + particles on simulated MPI ranks, print the outcome",
		[]string{"example", "measured", "report"},
		runQuickstart))
	reg(scenario.New(ScenarioRespiratory,
		"Aerosolized drug delivery: a 10-micron bolus under rapid inhalation, reporting deposition fractions and phase imbalance",
		[]string{"example", "measured", "report"},
		runRespiratory))
	reg(scenario.New(ScenarioPollutant,
		"Pollutant inhalation: continuous PM2.5 injection every step, tracking how particle load and imbalance build up",
		[]string{"example", "measured", "table"},
		runPollutant))
	reg(scenario.New(ScenarioCoupledDLB,
		"Execution mode and DLB mechanics on the host: synchronous vs coupled f+p splits with real core lending, wall clock",
		[]string{"example", "measured", "dlb", "report"},
		runCoupledDLB))
}

// runQuickstart is the minimal public-API workload behind
// examples/quickstart.
func runQuickstart(ctx context.Context, p scenario.Params) (*scenario.Artifact, error) {
	cfg := DefaultSimulationConfig()
	cfg.Run.FluidRanks = 4
	cfg.Run.Steps = 3
	cfg.Run.NumParticles = 1000
	p.ApplyMesh(&cfg.Mesh)
	p.ApplyRun(&cfg.Run)

	res, err := RunSimulationContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	width, rows := timeline(p, 90, 8)
	var sb strings.Builder
	sb.WriteString("respiratory CFPD quickstart\n")
	sb.WriteString(res.Summary())
	sb.WriteString("\nphase timeline:\n")
	sb.WriteString(res.Result.Trace.Render(width, rows))
	return &scenario.Artifact{
		Scenario: ScenarioQuickstart, Kind: scenario.KindReport,
		Title:  "respiratory CFPD quickstart",
		Report: sb.String(),
	}, nil
}

// runRespiratory is the paper's headline drug-delivery use case at
// laptop scale, behind examples/respiratory.
func runRespiratory(ctx context.Context, p scenario.Params) (*scenario.Artifact, error) {
	cfg := DefaultSimulationConfig()
	cfg.Mesh.Generations = 3 // deeper bronchial tree
	cfg.Run.Mode = coupling.Synchronous
	cfg.Run.FluidRanks = 16
	cfg.Run.RanksPerNode = 16
	cfg.Run.Steps = 4
	cfg.Run.NumParticles = 5000
	cfg.Run.NS.Strategy = tasking.StrategyMultidep // the paper's best assembly strategy
	cfg.Run.Species.Diameter = 10e-6               // 10 um inhaler aerosol
	cfg.Run.Species.Density = 1000
	p.ApplyMesh(&cfg.Mesh)
	p.ApplyRun(&cfg.Run)

	res, err := RunSimulationContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	r := res.Result
	pt := r.Trace.PhaseTimes()
	var sb strings.Builder
	sb.WriteString("aerosolized drug delivery — rapid inhalation\n")
	fmt.Fprintf(&sb, "mesh: %s\n\n", res.Mesh)
	fmt.Fprintf(&sb, "injected through the face:   %6d particles\n", r.Injected)
	fmt.Fprintf(&sb, "deposited on airway walls:   %6d (lost fraction, extrathoracic+bronchial)\n", r.Deposited)
	fmt.Fprintf(&sb, "reached the deep lung:       %6d (therapeutic fraction)\n", r.Exited)
	fmt.Fprintf(&sb, "still airborne after %d steps: %4d\n\n", cfg.Run.Steps, r.ActiveEnd)
	// The load-balance pathology the paper measures (Table 1): right
	// after injection, particle work sits on the inlet-owning ranks.
	fmt.Fprintf(&sb, "particle-phase load balance Ln = %.3f (1.0 = balanced; the paper measures 0.02 at 96 ranks)\n",
		metrics.LoadBalance(pt[trace.PhaseParticles]))
	fmt.Fprintf(&sb, "assembly-phase load balance Ln = %.3f\n",
		metrics.LoadBalance(pt[trace.PhaseAssembly]))
	return &scenario.Artifact{
		Scenario: ScenarioRespiratory, Kind: scenario.KindReport,
		Title:  "aerosolized drug delivery — rapid inhalation",
		Report: sb.String(),
	}, nil
}

// runPollutant drives the lower-level packages directly — distributed
// solver, tracker, migration — to inject particles EVERY step ("inject
// particles several times during the simulation", Section 2.2) and
// reports how the particle load and its imbalance build up over time.
// Behind examples/pollutant.
func runPollutant(ctx context.Context, p scenario.Params) (*scenario.Artifact, error) {
	ranks := 8
	steps := 6
	perStepShots := 400 // particles inhaled every step
	workers := 2
	seedBase := int64(1)
	if p.Ranks > 0 {
		ranks = p.Ranks
	}
	if p.Steps > 0 {
		steps = p.Steps
	}
	if p.Particles > 0 {
		perStepShots = p.Particles
	}
	if p.Workers > 0 {
		workers = p.Workers
	}
	if p.Seed != 0 {
		seedBase = p.Seed
	}
	mc := mesh.DefaultAirwayConfig()
	mc.Generations = 2
	p.ApplyMesh(&mc)
	m, err := mesh.GenerateAirway(mc)
	if err != nil {
		return nil, err
	}
	dual := m.DualByNode()
	part, err := partition.KWay(dual, nil, ranks)
	if err != nil {
		return nil, err
	}
	rms, err := partition.BuildRankMeshes(m, part.Parts, ranks)
	if err != nil {
		return nil, err
	}
	world, err := simmpi.NewWorld(ranks, simmpi.WithRanksPerNode(ranks))
	if err != nil {
		return nil, err
	}
	tr := trace.NewTrace(ranks)
	perStepLn := make([]float64, steps)
	perStepCount := make([]int, steps)
	ranSteps := 0

	soot := particles.Props{Diameter: 2.5e-6, Density: 1800} // PM2.5-like
	err = world.Run(func(r *simmpi.Rank) {
		pool := tasking.NewPool(workers)
		defer pool.Close()
		cfg := navierstokes.DefaultConfig()
		cfg.Strategy = tasking.StrategyMultidep
		if p.Strategy != nil {
			cfg.Strategy = *p.Strategy
		}
		ns, err := navierstokes.NewSolver(m, rms[r.ID()], r.Comm, pool, cfg,
			navierstokes.DefaultCostModel(), tr.Ranks[r.ID()])
		if err != nil {
			panic(err)
		}
		tk := particles.NewTracker(m, rms[r.ID()].Elems, soot, particles.AirAt20C())
		var peers []int
		for _, h := range rms[r.ID()].Halos {
			peers = append(peers, h.Peer)
		}
		for step := 0; step < steps; step++ {
			// Same between-steps cancellation contract as coupling.Run:
			// every rank agrees through a collective before breaking.
			flag := 0
			if ctx.Err() != nil {
				flag = 1
			}
			if r.Comm.AllreduceInt(flag, simmpi.OpMax) > 0 {
				break
			}
			if _, err := ns.Step(); err != nil {
				panic(err)
			}
			// Continuous pollutant exposure: inject EVERY step.
			tk.InjectAtInlet(perStepShots, seedBase+int64(step), cfg.InletVelocity)
			w0 := tk.WorkUnits
			tk.Step(cfg.Props.Dt, ns.VelocityAt)
			particles.Migrate(r.Comm, tk, peers, 1<<30)
			stepWork := float64(tk.WorkUnits - w0)
			// Gather per-rank particle work to measure imbalance.
			works := r.Comm.AllgatherFloat64(stepWork)
			if r.ID() == 0 {
				perStepLn[step] = metrics.LoadBalance(works)
				total := 0
				for _, w := range works {
					total += int(w)
				}
				perStepCount[step] = total
				ranSteps = step + 1
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); ranSteps < steps && err != nil {
		return nil, err
	}

	tab := scenario.Table{
		Title:    "pollutant inhalation — continuous PM2.5 injection",
		LabelCol: scenario.Column{Name: "step", HeaderFmt: "%6s", CellFmt: "%6s"},
		Columns: []scenario.Column{
			{Name: "tracked/step", HeaderFmt: "%16s", CellFmt: "%16.0f"},
			{Name: "particle-phase Ln", HeaderFmt: "%22s", CellFmt: "%22.3f"},
		},
	}
	for s := 0; s < steps; s++ {
		tab.Rows = append(tab.Rows, scenario.TableRow{
			Label:  strconv.Itoa(s),
			Values: []float64{float64(perStepCount[s]), perStepLn[s]},
		})
	}
	return &scenario.Artifact{
		Scenario: ScenarioPollutant, Kind: scenario.KindTable,
		Title:  tab.Title,
		Tables: []scenario.Table{tab},
		Notes: []string{
			"the tracked population grows every step while the work stays near the injection subdomains — exactly the growing imbalance the paper's DLB absorbs",
		},
	}, nil
}

// runCoupledDLB compares synchronous mode against several coupled f+p
// splits, with and without DLB, using the real lending implementation
// (pools resized through the PMPI hooks). Expect DLB to be SLOWER here:
// at this toy scale a phase lasts microseconds while hooks fire on every
// blocking call, so lending overhead dominates — the same trade-off that
// makes DLB pay off only when phases are long (the paper's production
// runs; the cluster-scale shapes are the fig8..fig11 scenarios). Behind
// examples/coupled_dlb.
func runCoupledDLB(ctx context.Context, p scenario.Params) (*scenario.Artifact, error) {
	type config struct {
		label string
		mode  coupling.Mode
		f, pr int
	}
	configs := []config{
		{"sync 8", coupling.Synchronous, 8, 0},
		{"6+2", coupling.Coupled, 6, 2},
		{"4+4", coupling.Coupled, 4, 4},
		{"2+6", coupling.Coupled, 2, 6},
	}

	var sb strings.Builder
	sb.WriteString("execution mode and DLB comparison (real runs, wall clock)\n")
	fmt.Fprintf(&sb, "%-10s %12s %14s %10s %10s\n", "config", "orig wall", "dlb wall", "lends", "peak pool")
	for _, c := range configs {
		var walls [2]string
		var lends, peak int
		for i, useDLB := range []bool{false, true} {
			cfg := DefaultSimulationConfig()
			cfg.Run.Mode = c.mode
			cfg.Run.FluidRanks = c.f
			cfg.Run.ParticleRanks = c.pr
			cfg.Run.Steps = 3
			cfg.Run.NumParticles = 4000
			cfg.Run.RanksPerNode = c.f + c.pr // one shared-memory node
			cfg.Run.WorkersPerRank = 2
			cfg.Run.UseDLB = useDLB
			cfg.Run.NS.Strategy = tasking.StrategyMultidep
			if p.Steps > 0 {
				cfg.Run.Steps = p.Steps
			}
			if p.Particles > 0 {
				cfg.Run.NumParticles = p.Particles
			}
			if p.Workers > 0 {
				cfg.Run.WorkersPerRank = p.Workers
			}
			if p.Strategy != nil {
				cfg.Run.NS.Strategy = *p.Strategy
			}
			res, err := RunSimulationContext(ctx, cfg)
			if err != nil {
				return nil, err
			}
			walls[i] = res.Result.Wall.Round(time.Millisecond).String()
			if useDLB {
				lends = res.Result.DLB.Lends
				for _, v := range res.Result.DLB.PeakWorkers {
					if v > peak {
						peak = v
					}
				}
			}
		}
		fmt.Fprintf(&sb, "%-10s %12s %14s %10d %10d\n", c.label, walls[0], walls[1], lends, peak)
	}
	return &scenario.Artifact{
		Scenario: ScenarioCoupledDLB, Kind: scenario.KindReport,
		Title:  "execution mode and DLB comparison",
		Report: sb.String(),
		Notes: []string{
			"the lends/peak columns show cores really flowing between the codes; wall-clock gains need phase times >> hook costs (see the modeled fig8..fig11 scenarios)",
		},
	}, nil
}
