package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/coupling"
	"repro/internal/memo"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/navierstokes"
	"repro/internal/trace"
)

// Calibration holds cost-model units derived so that a run's per-phase
// maxima reproduce a reference set of time shares (the paper's Table 1
// by default). The absolute per-phase kernel speeds of the paper's
// machines are not observable in this reproduction, so every scenario
// that wants paper-magnitude phase times calibrates first; the load
// balance Ln is independent of the units.
type Calibration struct {
	Cost         navierstokes.CostModel
	ParticleUnit float64
}

// Apply overlays the calibrated units onto a run configuration.
func (c Calibration) Apply(rc *coupling.RunConfig) {
	rc.Cost = c.Cost
	rc.ParticleUnit = c.ParticleUnit
}

// CalibratePhaseUnits executes a probe of rc on m under unit costs and
// returns the per-phase units that make the probe's per-phase maxima
// match the reference shares (ref rows in PhaseNames order; matrix
// assembly is the unit-cost reference phase). The probe uses the same
// step count as the final run because solver iteration counts evolve as
// the flow develops.
func CalibratePhaseUnits(ctx context.Context, m *mesh.Mesh, rc coupling.RunConfig, ref []metrics.PhaseRow) (Calibration, error) {
	if len(ref) != len(phaseOrder) {
		return Calibration{}, fmt.Errorf("repro: calibration needs %d reference rows, got %d", len(phaseOrder), len(ref))
	}
	for i, r := range ref {
		if !(r.Percent > 0) { // also rejects NaN
			return Calibration{}, fmt.Errorf("repro: calibration reference row %d (%s) needs a positive time share, got %g",
				i, r.Name, r.Percent)
		}
	}
	probe := rc
	probe.Cost = navierstokes.CostModel{AssemblyUnit: 1, SolverUnit: 1, SGSUnit: 1}
	probe.ParticleUnit = 1
	pres, err := coupling.RunContext(ctx, m, probe)
	if err != nil {
		return Calibration{}, err
	}
	rawMax := func(p trace.Phase) float64 {
		max := 0.0
		for _, v := range pres.Trace.PhaseTimes()[p] {
			if v > max {
				max = v
			}
		}
		return max
	}
	maxA := rawMax(trace.PhaseAssembly)
	unit := func(share float64, raw float64) float64 {
		if raw == 0 {
			return 1
		}
		return share / ref[0].Percent * maxA / raw
	}
	// Assembly is the reference; each remaining phase gets its own
	// per-unit cost.
	return Calibration{
		Cost: navierstokes.CostModel{
			AssemblyUnit: 1,
			SolverUnit:   unit(ref[1].Percent, rawMax(trace.PhaseSolver1)),
			Solver2Unit:  unit(ref[2].Percent, rawMax(trace.PhaseSolver2)),
			SGSUnit:      unit(ref[3].Percent, rawMax(trace.PhaseSGS)),
		},
		ParticleUnit: unit(ref[4].Percent, rawMax(trace.PhaseParticles)),
	}, nil
}

// table1TTL bounds how long a memoized Table-1 run is served. Within one
// benchfig invocation (tens of seconds) every scenario sharing an option
// set hits the cache exactly as before; in a long-running daemon the
// entries age out instead of accumulating forever.
const table1TTL = 15 * time.Minute

// table1Memo deduplicates concurrent and repeated Table-1 runs: the
// Table 1 scenario and its Figure 2 trace rendering share one calibrated
// probe + measured coupling.Run pair per option set. Failed (e.g.
// cancelled) computations are evicted, waiters with a live context retry
// after a failed leader, and entries expire after table1TTL — the
// single-flight contract lives in internal/memo.
var table1Memo = memo.New[Table1Options, *Table1Result](table1TTL)

// table1Shared returns the memoized Table-1 run for opts.
func table1Shared(ctx context.Context, opts Table1Options) (*Table1Result, error) {
	return table1Memo.Do(ctx, opts, func(ctx context.Context) (*Table1Result, error) {
		return table1Run(ctx, opts)
	})
}
