package repro

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/coupling"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/navierstokes"
	"repro/internal/trace"
)

// Calibration holds cost-model units derived so that a run's per-phase
// maxima reproduce a reference set of time shares (the paper's Table 1
// by default). The absolute per-phase kernel speeds of the paper's
// machines are not observable in this reproduction, so every scenario
// that wants paper-magnitude phase times calibrates first; the load
// balance Ln is independent of the units.
type Calibration struct {
	Cost         navierstokes.CostModel
	ParticleUnit float64
}

// Apply overlays the calibrated units onto a run configuration.
func (c Calibration) Apply(rc *coupling.RunConfig) {
	rc.Cost = c.Cost
	rc.ParticleUnit = c.ParticleUnit
}

// CalibratePhaseUnits executes a probe of rc on m under unit costs and
// returns the per-phase units that make the probe's per-phase maxima
// match the reference shares (ref rows in PhaseNames order; matrix
// assembly is the unit-cost reference phase). The probe uses the same
// step count as the final run because solver iteration counts evolve as
// the flow develops.
func CalibratePhaseUnits(ctx context.Context, m *mesh.Mesh, rc coupling.RunConfig, ref []metrics.PhaseRow) (Calibration, error) {
	if len(ref) != len(phaseOrder) {
		return Calibration{}, fmt.Errorf("repro: calibration needs %d reference rows, got %d", len(phaseOrder), len(ref))
	}
	for i, r := range ref {
		if !(r.Percent > 0) { // also rejects NaN
			return Calibration{}, fmt.Errorf("repro: calibration reference row %d (%s) needs a positive time share, got %g",
				i, r.Name, r.Percent)
		}
	}
	probe := rc
	probe.Cost = navierstokes.CostModel{AssemblyUnit: 1, SolverUnit: 1, SGSUnit: 1}
	probe.ParticleUnit = 1
	pres, err := coupling.RunContext(ctx, m, probe)
	if err != nil {
		return Calibration{}, err
	}
	rawMax := func(p trace.Phase) float64 {
		max := 0.0
		for _, v := range pres.Trace.PhaseTimes()[p] {
			if v > max {
				max = v
			}
		}
		return max
	}
	maxA := rawMax(trace.PhaseAssembly)
	unit := func(share float64, raw float64) float64 {
		if raw == 0 {
			return 1
		}
		return share / ref[0].Percent * maxA / raw
	}
	// Assembly is the reference; each remaining phase gets its own
	// per-unit cost.
	return Calibration{
		Cost: navierstokes.CostModel{
			AssemblyUnit: 1,
			SolverUnit:   unit(ref[1].Percent, rawMax(trace.PhaseSolver1)),
			Solver2Unit:  unit(ref[2].Percent, rawMax(trace.PhaseSolver2)),
			SGSUnit:      unit(ref[3].Percent, rawMax(trace.PhaseSGS)),
		},
		ParticleUnit: unit(ref[4].Percent, rawMax(trace.PhaseParticles)),
	}, nil
}

// table1Entry deduplicates concurrent and repeated Table-1 runs: the
// Table 1 scenario and its Figure 2 trace rendering share one calibrated
// probe + measured coupling.Run pair per option set.
type table1Entry struct {
	done chan struct{}
	res  *Table1Result
	err  error
}

var table1Cache = struct {
	sync.Mutex
	m map[Table1Options]*table1Entry
}{m: map[Table1Options]*table1Entry{}}

// table1Shared returns the memoized Table-1 run for opts, computing it
// at most once per process. Failed (e.g. cancelled) computations are not
// cached; concurrent callers wait for the in-flight computation, and a
// waiter whose own context is still live retries after observing a
// failed leader instead of inheriting the leader's error (the leader's
// cancellation must not fail an unrelated caller).
func table1Shared(ctx context.Context, opts Table1Options) (*Table1Result, error) {
	for {
		table1Cache.Lock()
		e, ok := table1Cache.m[opts]
		if !ok {
			e = &table1Entry{done: make(chan struct{})}
			table1Cache.m[opts] = e
			table1Cache.Unlock()
			e.res, e.err = table1Run(ctx, opts)
			if e.err != nil {
				evict(opts, e)
			}
			close(e.done)
			return e.res, e.err
		}
		table1Cache.Unlock()
		select {
		case <-e.done:
			// Prefer a completed computation over a cancelled waiter (a
			// two-way select picks randomly when both are ready, and a
			// memoized hit costs nothing to serve).
		case <-ctx.Done():
			select {
			case <-e.done:
			default:
				return nil, ctx.Err()
			}
		}
		if e.err == nil {
			return e.res, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The leader normally evicts its failed entry itself; the
		// double-check makes the retry safe even if this waiter wins the
		// race to observe the failure.
		evict(opts, e)
	}
}

// evict removes e from the cache unless a newer entry replaced it.
func evict(opts Table1Options, e *table1Entry) {
	table1Cache.Lock()
	if table1Cache.m[opts] == e {
		delete(table1Cache.m, opts)
	}
	table1Cache.Unlock()
}
