// benchout: machine-readable A/B micro-benchmarks for the perf
// trajectory. `benchfig -benchout FILE` measures the allocation-heavy
// legacy paths against their zero-allocation steady-state counterparts
// (Krylov workspace solvers, leased halo buffers, typed collectives,
// the sharded particle step, and the fresh-vs-compiled multidep task
// graph) and writes ns/op + allocs/op as JSON — the format the CI smoke
// step validates and BENCH_<pr>.json snapshots accumulate.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/mesh"
	"repro/internal/particles"
	"repro/internal/simmpi"
	"repro/internal/tasking"
)

// benchResult is one measured configuration.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// benchReport is the file schema.
type benchReport struct {
	Schema     string        `json:"schema"`
	GoMaxProcs int           `json:"go_max_procs"`
	Benches    []benchResult `json:"benches"`
}

const benchSchema = "repro/bench/v1"

// benchQuick, when set (by tests), divides the measured iteration
// counts so the schema and zero-alloc contracts can be pinned without
// paying the full measurement wall-clock (worthless under -race
// instrumentation anyway).
var benchQuick bool

// scaledIters applies the quick-mode reduction.
func scaledIters(n int) int {
	if benchQuick {
		n /= 10
		if n < 3 {
			n = 3
		}
	}
	return n
}

// measureLoop times fn over iters iterations after warmup rounds and
// reads heap counters around the measured window. Allocations on every
// goroutine count (runtime.MemStats is process-wide), which is what the
// world-based benches need.
func measureLoop(name string, warmup, iters int, fn func()) benchResult {
	for i := 0; i < warmup; i++ {
		fn()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return benchResult{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
	}
}

// benchChainMatrix builds the n-unknown tridiagonal SPD system the
// Krylov benches solve.
func benchChainMatrix(n int) *la.CSRMatrix {
	lists := make([][]int32, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			lists[i] = append(lists[i], int32(i-1))
		}
		if i < n-1 {
			lists[i] = append(lists[i], int32(i+1))
		}
	}
	a := la.NewCSRFromGraph(graph.FromAdjacency(lists))
	for i := 0; i < n; i++ {
		a.Val[a.Find(int32(i), int32(i))] = 4
		if i > 0 {
			a.Val[a.Find(int32(i), int32(i-1))] = -1
		}
		if i < n-1 {
			a.Val[a.Find(int32(i), int32(i+1))] = -1
		}
	}
	return a
}

func benchKrylov(results *[]benchResult) {
	const n = 4096
	a := benchChainMatrix(n)
	d := make([]float64, n)
	a.Diagonal(d)
	inv := make([]float64, n)
	la.JacobiInvInto(d, inv)
	apply := la.JacobiApplier(inv)
	ops := la.OpsFromMatrix(a)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	x := make([]float64, n)
	ws := la.NewKrylovWorkspace(n)

	*results = append(*results,
		measureLoop("pcg/alloc", 3, scaledIters(30), func() {
			la.Fill(x, 0)
			if _, err := la.PCG(ops, apply, b, x, 1e-8, 200); err != nil {
				panic(err)
			}
		}),
		measureLoop("pcg/workspace", 3, scaledIters(30), func() {
			la.Fill(x, 0)
			if _, err := la.PCGWithWorkspace(ops, apply, b, x, 1e-8, 200, ws); err != nil {
				panic(err)
			}
		}),
		measureLoop("bicgstab/alloc", 3, scaledIters(30), func() {
			la.Fill(x, 0)
			if _, err := la.BiCGSTAB(ops, apply, b, x, 1e-8, 200); err != nil {
				panic(err)
			}
		}),
		measureLoop("bicgstab/workspace", 3, scaledIters(30), func() {
			la.Fill(x, 0)
			if _, err := la.BiCGSTABWithWorkspace(ops, apply, b, x, 1e-8, 200, ws); err != nil {
				panic(err)
			}
		}),
	)
}

// benchHalo measures one symmetric two-rank halo exchange per op, fresh
// per-exchange buffers (the seed's pattern) against leased persistent
// buffers. The measurement runs inside the world so only steady-state
// rounds count.
func benchHalo(results *[]benchResult) {
	n, warmup, rounds := 512, 50, scaledIters(3000)
	for _, leased := range []bool{false, true} {
		name := "halo/fresh"
		if leased {
			name = "halo/persistent"
		}
		w, err := simmpi.NewWorld(2)
		if err != nil {
			panic(err)
		}
		var res benchResult
		if err := w.Run(func(r *simmpi.Rank) {
			peer := 1 - r.ID()
			x := make([]float64, n)
			round := func(tag int) {
				if leased {
					b := r.Comm.LeaseFloat64s(n)
					copy(b.Data, x)
					r.Comm.SendFloat64Buf(peer, tag, b)
					rb := r.Comm.RecvFloat64Buf(peer, tag)
					for i := range x {
						x[i] += rb.Data[i]
					}
					rb.Release()
				} else {
					buf := make([]float64, n)
					copy(buf, x)
					r.Comm.Send(peer, tag, buf)
					got := r.Comm.RecvFloat64s(peer, tag)
					for i := range x {
						x[i] += got[i]
					}
				}
				la.Fill(x, 1) // keep values bounded across rounds
			}
			for i := 0; i < warmup; i++ {
				round(i + 1)
			}
			r.Comm.Barrier()
			if r.ID() == 0 {
				res = measureLoop(name, 0, rounds, func() {
					round(warmup + 1)
				})
			} else {
				for i := 0; i < rounds; i++ {
					round(warmup + 1)
				}
			}
		}); err != nil {
			panic(err)
		}
		// Both ranks exchange each op, so per-op cost is per rank-pair.
		*results = append(*results, res)
	}
}

// benchCollective measures the typed scalar allreduce on four ranks.
func benchCollective(results *[]benchResult) {
	warmup, rounds := 100, scaledIters(20000)
	w, err := simmpi.NewWorld(4)
	if err != nil {
		panic(err)
	}
	var res benchResult
	if err := w.Run(func(r *simmpi.Rank) {
		round := func() { _ = r.Comm.AllreduceFloat64(float64(r.ID()), simmpi.OpMax) }
		for i := 0; i < warmup; i++ {
			round()
		}
		r.Comm.Barrier()
		if r.ID() == 0 {
			res = measureLoop("collective/allreduce-f64", 0, rounds, round)
		} else {
			for i := 0; i < rounds; i++ {
				round()
			}
		}
	}); err != nil {
		panic(err)
	}
	*results = append(*results, res)
}

// benchTrackerStep measures the steady-state serial particle step.
func benchTrackerStep(results *[]benchResult) {
	cfg := mesh.DefaultAirwayConfig()
	cfg.Generations = 2
	cfg.NTheta = 8
	cfg.NAxial = 4
	m, err := mesh.GenerateAirway(cfg)
	if err != nil {
		panic(err)
	}
	fluid := particles.AirAt20C()
	fluid.Gravity = mesh.Vec3{}
	tr := particles.NewTracker(m, nil, particles.Props{Diameter: 10e-6, Density: 1000}, fluid)
	tr.InjectAtInlet(1000, 3, mesh.Vec3{})
	still := func(int32) mesh.Vec3 { return mesh.Vec3{} }
	*results = append(*results, measureLoop("tracker/step", 10, scaledIters(50), func() {
		tr.Step(1e-4, still)
	}))
}

// benchAssembly measures the matrix-assembly strategies on a synthetic
// scattered-reduction workload (elements scattering into shared slots,
// dense conflicts): the multidep fresh-graph path (task structs, boxed
// dependence keys and map-backed edge construction rebuilt every step)
// against the compiled task graph (built once, reset in place — the
// steady-state zero-alloc path CI asserts), plus the other strategies
// for the per-strategy comparison of the paper's Figure 4.
func benchAssembly(results *[]benchResult) {
	const (
		nNodes = 600
		nElems = 8000
		nsub   = 32
	)
	rng := rand.New(rand.NewSource(7))
	conn := make([][4]int32, nElems)
	for e := range conn {
		base := rng.Intn(nNodes)
		for i := range conn[e] {
			conn[e][i] = int32((base + rng.Intn(8)) % nNodes)
		}
	}
	vec := make([]float64, nNodes)
	plain := &tasking.Scatter{
		AddVec: func(i int32, v float64) { vec[i] += v },
		AddMat: func(int32, int32, float64) {},
	}
	av := tasking.NewAtomicFloat64Slice(nNodes)
	atomicS := &tasking.Scatter{
		AddVec: func(i int32, v float64) { av.Add(int(i), v) },
		AddMat: func(int32, int32, float64) {},
	}
	kernel := func(e int, s *tasking.Scatter) {
		for _, nd := range conn[e] {
			s.AddVec(nd, float64(e%7)+0.5)
		}
	}

	// Contiguous-block subdomains and their share-a-slot adjacency.
	labels := make([]int32, nElems)
	per := (nElems + nsub - 1) / nsub
	for e := range labels {
		labels[e] = int32(e / per)
	}
	slotSubs := make([]map[int32]bool, nNodes)
	slotElems := make([][]int32, nNodes)
	for e, c := range conn {
		for _, nd := range c {
			if slotSubs[nd] == nil {
				slotSubs[nd] = map[int32]bool{}
			}
			slotSubs[nd][labels[e]] = true
			slotElems[nd] = append(slotElems[nd], int32(e))
		}
	}
	subLists := make([][]int32, nsub)
	for _, subs := range slotSubs {
		for a := range subs {
			for b := range subs {
				if a != b {
					subLists[a] = append(subLists[a], b)
				}
			}
		}
	}
	subAdj := graph.FromAdjacency(subLists)
	elemLists := make([][]int32, nElems)
	for _, elems := range slotElems {
		for _, e := range elems {
			for _, f := range elems {
				if e != f {
					elemLists[e] = append(elemLists[e], f)
				}
			}
		}
	}
	conflicts := graph.FromAdjacency(elemLists)

	pool := tasking.NewPool(4)
	defer pool.Close()
	iters := scaledIters(200)

	freshPlan := tasking.NewMultidepPlan(labels, subAdj, tasking.KeyNeighbors)
	*results = append(*results, measureLoop("assemble-multidep/fresh", 5, iters, func() {
		if err := freshPlan.TaskGraph(kernel, plain).Run(pool); err != nil {
			panic(err)
		}
	}))
	compiledPlan := tasking.NewMultidepPlan(labels, subAdj, tasking.KeyNeighbors)
	compiledPlan.Compile()
	*results = append(*results, measureLoop("assemble-multidep/compiled", 5, iters, func() {
		if err := tasking.Assemble(pool, compiledPlan, kernel, plain, nil); err != nil {
			panic(err)
		}
	}))
	atomicPlan := tasking.NewAtomicPlan(nElems)
	*results = append(*results, measureLoop("assemble/atomic", 5, iters, func() {
		if err := tasking.Assemble(pool, atomicPlan, kernel, nil, atomicS); err != nil {
			panic(err)
		}
	}))
	coloringPlan := tasking.NewColoringPlan(conflicts)
	*results = append(*results, measureLoop("assemble/coloring", 5, iters, func() {
		if err := tasking.Assemble(pool, coloringPlan, kernel, plain, nil); err != nil {
			panic(err)
		}
	}))
}

// runBenchout executes the A/B suite and writes the JSON report to path
// ('-' writes to stdout).
func runBenchout(path string, stdout, stderr io.Writer) error {
	var results []benchResult
	fmt.Fprintln(stderr, "benchfig: running A/B benchmarks (krylov, halo, collective, tracker, assembly)...")
	benchKrylov(&results)
	benchHalo(&results)
	benchCollective(&results)
	benchTrackerStep(&results)
	benchAssembly(&results)
	report := benchReport{Schema: benchSchema, GoMaxProcs: runtime.GOMAXPROCS(0), Benches: results}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err := stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
