package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/scenario"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(context.Background(), args, &out, &errb)
	return out.String(), errb.String(), err
}

// TestUnknownExpErrors pins the satellite fix: an unrecognized -exp must
// fail loudly and list every registered scenario (the seed CLI silently
// did nothing).
func TestUnknownExpErrors(t *testing.T) {
	_, _, err := runCLI(t, "-exp", "nosuch")
	if err == nil {
		t.Fatal("unknown -exp must error")
	}
	msg := err.Error()
	for _, want := range []string{`"nosuch"`, "table1", "fig11", "quickstart", "coupled_dlb"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q should mention %q", msg, want)
		}
	}
	// A typo inside a multi-name selection fails the whole run too.
	if _, _, err := runCLI(t, "-exp", "fig8,nope"); err == nil {
		t.Fatal("unknown name in a list must error")
	}
}

// TestListEnumeratesRegistry: 12 paper experiments + 4 example workloads.
func TestListEnumeratesRegistry(t *testing.T) {
	out, _, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	names := scenario.Default.Names()
	if len(names) < 15 {
		t.Fatalf("registry holds %d scenarios, want >= 15", len(names))
	}
	for _, n := range names {
		if !strings.Contains(out, n) {
			t.Fatalf("-list output missing %q:\n%s", n, out)
		}
	}
}

// TestPaperSuiteSelection: -exp all is exactly the pre-registry benchfig
// suite, in its historical order.
func TestPaperSuiteSelection(t *testing.T) {
	scs, err := selectScenarios(scenario.Default, "all", "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"ipc", "ablation", "particles", "solver"}
	if len(scs) != len(want) {
		t.Fatalf("all = %d scenarios, want %d", len(scs), len(want))
	}
	for i, s := range scs {
		if s.Name() != want[i] {
			t.Fatalf("all[%d] = %s, want %s", i, s.Name(), want[i])
		}
	}
	// Tag selection reaches the examples without running them.
	ex, err := selectScenarios(scenario.Default, "all", "example")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != 4 {
		t.Fatalf("tag example = %d scenarios, want 4", len(ex))
	}
	if _, err := selectScenarios(scenario.Default, "all", "nosuchtag"); err == nil {
		t.Fatal("unknown tag must error")
	}
}

// TestFig8TextGolden pins that the registry-driven CLI reproduces the
// pre-refactor text output byte for byte (fig8 is fully modeled, hence
// deterministic).
func TestFig8TextGolden(t *testing.T) {
	out, _, err := runCLI(t, "-exp", "fig8")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/fig8.golden")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Fatalf("fig8 text drifted from pre-refactor output:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

// TestJSONOutputRoundTrips: -format json emits an array of artifacts
// that encoding/json accepts back.
func TestJSONOutputRoundTrips(t *testing.T) {
	out, _, err := runCLI(t, "-exp", "ipc,fig9", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	var arts []scenario.Artifact
	if err := json.Unmarshal([]byte(out), &arts); err != nil {
		t.Fatalf("json output invalid: %v\n%s", err, out)
	}
	if len(arts) != 2 || arts[0].Scenario != repro.ScenarioIPC || arts[1].Scenario != repro.ScenarioFigure9 {
		t.Fatalf("artifacts %+v", arts)
	}
	if arts[0].Kind != scenario.KindReport || arts[1].Kind != scenario.KindFigure {
		t.Fatal("artifact kinds lost in transit")
	}
}

// TestCSVOutput: uniform header plus per-point records.
func TestCSVOutput(t *testing.T) {
	out, _, err := runCLI(t, "-exp", "fig10", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != strings.Join(scenario.CSVHeader, ",") {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 11 { // 2 series x 5 configs
		t.Fatalf("%d csv lines, want 11:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "fig10,figure,Figure 10,") {
		t.Fatalf("first record %q", lines[1])
	}
}

// TestPlatformRestriction: the legacy -platform flag still narrows the
// per-platform figures.
func TestPlatformRestriction(t *testing.T) {
	out, _, err := runCLI(t, "-exp", "fig6", "-platform", "Thunder")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "MareNostrum4") || !strings.Contains(out, "Thunder") {
		t.Fatalf("platform restriction failed:\n%s", out)
	}
	if _, _, err := runCLI(t, "-exp", "fig6", "-platform", "NoSuchMachine"); err == nil {
		t.Fatal("unknown platform must error")
	}
}

// TestParallelKeepsOrder: with -parallel the text output order is still
// the selection order.
func TestParallelKeepsOrder(t *testing.T) {
	out, _, err := runCLI(t, "-exp", "fig11,fig8,ipc", "-parallel", "3")
	if err != nil {
		t.Fatal(err)
	}
	i11 := strings.Index(out, "Figure 11")
	i8 := strings.Index(out, "Figure 8")
	iIPC := strings.Index(out, "Assembly-phase IPC")
	if i11 < 0 || i8 < 0 || iIPC < 0 || !(i11 < i8 && i8 < iIPC) {
		t.Fatalf("output order broken: fig11@%d fig8@%d ipc@%d", i11, i8, iIPC)
	}
}

// TestBadFormatAndArgs: flag validation errors, before any scenario runs.
func TestBadFormatAndArgs(t *testing.T) {
	// table1 takes seconds; a format typo must fail fast instead of
	// running it first and discarding the results.
	start := time.Now()
	if _, _, err := runCLI(t, "-exp", "table1", "-format", "yaml"); err == nil {
		t.Fatal("unknown format must error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("format validation ran the scenarios first (%v)", d)
	}
	if _, _, err := runCLI(t, "table1"); err == nil {
		t.Fatal("positional arguments must error")
	}
}

// TestCLIMatchesExampleWrapper: `benchfig -exp quickstart` and the
// examples/quickstart main run the same scenario with the same defaults
// — including the scenario's own 90x8 timeline (CLI flag defaults must
// not leak in).
func TestCLIMatchesExampleWrapper(t *testing.T) {
	out, _, err := runCLI(t, "-exp", "quickstart")
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Default.Get(repro.ScenarioQuickstart)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(context.Background(), scenario.Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock lines differ run to run; compare everything else.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "wall=") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(out) != strip(a.Text())+"\n" { // CLI prints with a trailing newline
		t.Fatalf("CLI and wrapper diverged:\n--- cli ---\n%s--- wrapper ---\n%s", out, a.Text())
	}
}

// TestBenchoutWritesValidReport pins the -benchout contract: a valid
// JSON report with the expected schema, every A/B pair present, sane
// timings, and zero steady-state allocations on the workspace variants
// (the tentpole's acceptance criterion, machine-checked).
func TestBenchoutWritesValidReport(t *testing.T) {
	benchQuick = true // pin the contracts, skip the full measurement wall-clock
	defer func() { benchQuick = false }()
	path := t.TempDir() + "/bench.json"
	if _, _, err := runCLI(t, "-benchout", path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("benchout wrote invalid JSON: %v", err)
	}
	if report.Schema != benchSchema {
		t.Fatalf("schema = %q, want %q", report.Schema, benchSchema)
	}
	got := map[string]benchResult{}
	for _, r := range report.Benches {
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Errorf("bench %q has non-positive timing: %+v", r.Name, r)
		}
		got[r.Name] = r
	}
	for _, name := range []string{
		"pcg/alloc", "pcg/workspace", "bicgstab/alloc", "bicgstab/workspace",
		"halo/fresh", "halo/persistent", "collective/allreduce-f64", "tracker/step",
		"assemble-multidep/fresh", "assemble-multidep/compiled",
		"assemble/atomic", "assemble/coloring",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("bench %q missing from report", name)
		}
	}
	for _, name := range []string{"pcg/workspace", "bicgstab/workspace", "tracker/step", "assemble-multidep/compiled"} {
		if r := got[name]; r.AllocsPerOp != 0 {
			t.Errorf("%s allocates %.3f objects per op in steady state, want 0", name, r.AllocsPerOp)
		}
	}
	if a, b := got["halo/fresh"], got["halo/persistent"]; a.AllocsPerOp <= b.AllocsPerOp {
		t.Errorf("persistent halo (%.3f allocs/op) must beat fresh buffers (%.3f allocs/op)", b.AllocsPerOp, a.AllocsPerOp)
	}
	if a, b := got["assemble-multidep/fresh"], got["assemble-multidep/compiled"]; a.AllocsPerOp <= b.AllocsPerOp {
		t.Errorf("compiled multidep assembly (%.3f allocs/op) must beat the fresh graph (%.3f allocs/op)", b.AllocsPerOp, a.AllocsPerOp)
	}
}

// TestBenchoutRejectsScenarioFlags: -benchout replaces the scenario run,
// so combining it with a scenario selection must fail loudly.
func TestBenchoutRejectsScenarioFlags(t *testing.T) {
	if _, _, err := runCLI(t, "-benchout", "-", "-exp", "ipc"); err == nil {
		t.Fatal("-benchout with -exp must error")
	}
	if _, _, err := runCLI(t, "-benchout", "-", "-format", "xml"); err == nil {
		t.Fatal("-benchout with an invalid -format must error")
	}
}

// TestProgressOutput: -progress reports start and finish per scenario on
// stderr, never on stdout.
func TestProgressOutput(t *testing.T) {
	out, errb, err := runCLI(t, "-exp", "ipc", "-progress")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb, "[1/1] ipc ...") || !strings.Contains(errb, "done in") {
		t.Fatalf("progress missing on stderr: %q", errb)
	}
	if strings.Contains(out, "[1/1]") {
		t.Fatal("progress leaked to stdout")
	}
}
