// Command benchfig serves the scenario registry: every table and figure
// of the paper's evaluation plus the example workloads, selected by
// name or tag, rendered as text, JSON, or CSV, optionally in parallel.
//
// Usage:
//
//	benchfig -list                     # enumerate registered scenarios
//	benchfig                           # the paper evaluation suite (-exp all)
//	benchfig -exp table1               # one scenario
//	benchfig -exp fig6,fig7 -platform Thunder
//	benchfig -tags example             # the example workloads
//	benchfig -exp fig8 -format json    # typed artifact as JSON
//	benchfig -exp all -format csv      # flat CSV over every artifact
//	benchfig -exp fig6,fig8 -parallel 2 -progress
//	benchfig -benchout BENCH_4.json    # A/B micro-benchmarks (ns/op, allocs/op)
//
// Unknown -exp names fail with the list of registered scenarios. `-exp
// all` expands to the scenarios tagged "paper" (the pre-registry
// benchfig suite, in registration order); a Ctrl-C cancels in-flight
// simulations at their next step boundary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	_ "repro" // populate the default scenario registry
	"repro/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

// run is the whole CLI, separated from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list registered scenarios and exit")
		exp      = fs.String("exp", "all", "comma-separated scenario names, or 'all' for the paper suite")
		tags     = fs.String("tags", "", "select scenarios by comma-separated tags instead of -exp")
		format   = fs.String("format", "text", "output format: text, json, or csv")
		parallel = fs.Int("parallel", 1, "number of scenarios to run concurrently")
		progress = fs.Bool("progress", false, "report per-scenario progress on stderr")
		platform = fs.String("platform", "", "restrict per-platform figures to one platform (MareNostrum4 or Thunder)")
		width    = fs.Int("width", 100, "timeline width (trace scenarios)")
		rows     = fs.Int("rows", 24, "timeline max rows (trace scenarios)")
		inflow   = fs.String("inflow", "", "inlet waveform for measured scenarios: steady, breathing:<period>, or table:<t>=<s>,...")
		sweepD   = fs.String("sweep-d", "", "comma-separated particle diameters in meters (sweep scenarios)")
		sweepQ   = fs.String("sweep-q", "", "comma-separated inlet face speeds in m/s (sweep scenarios)")
		sweepG   = fs.String("sweep-g", "", "comma-separated airway mesh generations (sweep scenarios)")
		benchout = fs.String("benchout", "", "run the A/B micro-benchmarks and write machine-readable ns/op + allocs/op JSON to this file ('-' for stdout), then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (scenarios are selected with -exp)", fs.Args())
	}
	switch *format {
	case "text", "json", "csv":
	default:
		// Validated before any scenario runs: a typo must not discard a
		// minutes-long suite.
		return fmt.Errorf("unknown format %q (want text, json, or csv)", *format)
	}
	if *benchout != "" {
		// -benchout runs the micro-benchmark suite instead of scenarios;
		// a scenario selection alongside it would be silently ignored, so
		// reject the combination loudly.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "exp", "tags", "parallel", "progress", "platform", "width", "rows",
				"inflow", "sweep-d", "sweep-q", "sweep-g":
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-benchout runs the benchmark suite and ignores scenario selection; drop -%s", conflict)
		}
		return runBenchout(*benchout, stdout, stderr)
	}
	reg := scenario.Default

	if *list {
		fmt.Fprintf(stdout, "%-12s %-28s %s\n", "NAME", "TAGS", "DESCRIPTION")
		for _, s := range reg.Scenarios() {
			fmt.Fprintf(stdout, "%-12s %-28s %s\n", s.Name(), strings.Join(s.Tags(), ","), s.Describe())
		}
		return nil
	}

	scs, err := selectScenarios(reg, *exp, *tags)
	if err != nil {
		return err
	}

	// Flag defaults must not override a scenario's own timeline defaults
	// (quickstart renders 90x8; fig2 100x24): only pass explicitly set
	// flags through.
	var params scenario.Params
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "width":
			params.Width = *width
		case "rows":
			params.Rows = *rows
		}
	})
	if *platform != "" {
		params.Platforms = []string{*platform}
	}
	if *inflow != "" {
		w, err := scenario.ParseWaveform(*inflow)
		if err != nil {
			return err
		}
		params.Inflow = w
	}
	if *sweepD != "" {
		ds, err := parseFloatList("sweep-d", *sweepD)
		if err != nil {
			return err
		}
		params.SweepDiameters = ds
	}
	if *sweepQ != "" {
		qs, err := parseFloatList("sweep-q", *sweepQ)
		if err != nil {
			return err
		}
		params.SweepFlows = qs
	}
	if *sweepG != "" {
		gs, err := parseIntList("sweep-g", *sweepG)
		if err != nil {
			return err
		}
		params.SweepGens = gs
	}

	runner := scenario.Runner{Parallel: *parallel}
	if *progress {
		runner.Progress = func(ev scenario.Event) {
			if !ev.Done {
				fmt.Fprintf(stderr, "[%d/%d] %s ...\n", ev.Index+1, ev.Total, ev.Scenario)
			} else if ev.Err != nil {
				fmt.Fprintf(stderr, "[%d/%d] %s FAILED after %v: %v\n", ev.Index+1, ev.Total, ev.Scenario, ev.Elapsed.Round(1e6), ev.Err)
			} else {
				fmt.Fprintf(stderr, "[%d/%d] %s done in %v\n", ev.Index+1, ev.Total, ev.Scenario, ev.Elapsed.Round(1e6))
			}
		}
	}

	results, ctxErr := runner.Run(ctx, scs, params)
	var arts []*scenario.Artifact
	var firstErr error
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintln(stderr, "benchfig:", res.Err)
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		arts = append(arts, res.Artifact)
	}

	switch *format {
	case "text":
		for _, a := range arts {
			fmt.Fprintln(stdout, a.Text())
		}
	case "json":
		out, err := json.MarshalIndent(arts, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
	case "csv":
		out, err := scenario.WriteCSV(arts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
	}
	if firstErr != nil {
		return fmt.Errorf("%d of %d scenarios failed (first: %w)", len(results)-len(arts), len(results), firstErr)
	}
	return ctxErr
}

// parseFloatList parses a comma-separated list of positive floats for a
// sweep-axis flag.
func parseFloatList(name, s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || !(v > 0) {
			return nil, fmt.Errorf("-%s: want positive numbers, got %q", name, f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", name)
	}
	return out, nil
}

// parseIntList parses a comma-separated list of positive ints for a
// sweep-axis flag.
func parseIntList(name, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-%s: want positive integers, got %q", name, f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", name)
	}
	return out, nil
}

// selectScenarios resolves the -exp / -tags selection against the
// registry. Tag selection wins when given; "all" is the paper suite.
func selectScenarios(reg *scenario.Registry, exp, tags string) ([]scenario.Scenario, error) {
	if tags != "" {
		seen := map[string]bool{}
		var out []scenario.Scenario
		for _, tag := range strings.Split(tags, ",") {
			tag = strings.TrimSpace(tag)
			for _, s := range reg.WithTag(tag) {
				if !seen[s.Name()] {
					seen[s.Name()] = true
					out = append(out, s)
				}
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no scenario carries tags %q; known tags: %s",
				tags, strings.Join(reg.Tags(), ", "))
		}
		return out, nil
	}
	if exp == "all" {
		return reg.WithTag("paper"), nil
	}
	var names []string
	for _, n := range strings.Split(exp, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty -exp selection")
	}
	return reg.Select(names)
}
