// Command benchfig regenerates every table and figure of the paper's
// evaluation section and prints measured-vs-paper comparisons.
//
// Usage:
//
//	benchfig                  # everything
//	benchfig -exp table1      # one experiment
//	benchfig -exp fig6 -platform Thunder
//	benchfig -exp particles   # particle engine A/B (locator, tracker)
//	benchfig -exp solver      # threaded la kernel A/B (SpMV, PCG, drag)
//
// Experiments: table1, fig2, fig6, fig7, fig8, fig9, fig10, fig11, ipc,
// ablation, particles, solver, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1 fig2 fig6 fig7 fig8 fig9 fig10 fig11 ipc ablation particles solver all)")
	platform := flag.String("platform", "", "restrict fig6/fig7/ablation to one platform (MareNostrum4 or Thunder)")
	width := flag.Int("width", 100, "figure-2 timeline width")
	rows := flag.Int("rows", 24, "figure-2 timeline max rows")
	flag.Parse()

	if err := run(*exp, *platform, *width, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(exp, platform string, width, rows int) error {
	platforms := []string{"MareNostrum4", "Thunder"}
	if platform != "" {
		platforms = []string{platform}
	}
	all := exp == "all"

	if all || exp == "table1" {
		res, err := repro.Table1(repro.DefaultTable1Options())
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	}
	if all || exp == "fig2" {
		out, err := repro.Figure2(repro.DefaultTable1Options(), width, rows)
		if err != nil {
			return err
		}
		fmt.Println("Figure 2 — trace of the respiratory simulation (one node, 96 ranks)")
		fmt.Println(out)
	}
	if all || exp == "fig6" {
		for _, p := range platforms {
			f, err := repro.Figure6(p)
			if err != nil {
				return err
			}
			fmt.Println(f.Format())
		}
	}
	if all || exp == "fig7" {
		for _, p := range platforms {
			f, err := repro.Figure7(p)
			if err != nil {
				return err
			}
			fmt.Println(f.Format())
		}
	}
	figs := []struct {
		name string
		fn   func() (*repro.FigureResult, error)
	}{
		{"fig8", repro.Figure8},
		{"fig9", repro.Figure9},
		{"fig10", repro.Figure10},
		{"fig11", repro.Figure11},
	}
	for _, fg := range figs {
		if all || exp == fg.name {
			f, err := fg.fn()
			if err != nil {
				return err
			}
			fmt.Println(f.Format())
		}
	}
	if all || exp == "ipc" {
		fmt.Println(repro.IPCReport())
	}
	if all || exp == "ablation" {
		for _, p := range platforms {
			f, err := repro.MultidepKeyingAblation(p)
			if err != nil {
				return err
			}
			fmt.Println(f.Format())
		}
	}
	if all || exp == "particles" {
		out, err := repro.ParticleEngineReport()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if all || exp == "solver" {
		out, err := repro.SolverKernelReport()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if !all {
		switch exp {
		case "table1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ipc", "ablation", "particles", "solver":
		default:
			return fmt.Errorf("unknown experiment %q", exp)
		}
	}
	return nil
}
