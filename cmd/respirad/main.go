// Command respirad serves the scenario registry over HTTP as a
// long-running job service: submit a scenario with optional overrides,
// get a job ID, poll status and progress, fetch the typed artifact as
// text, JSON, or CSV, cancel mid-run. A bounded cost/capacity scheduler
// queues jobs FIFO when the process is saturated (and rejects with 429
// once the queue is full), and an expiring single-flight artifact cache
// deduplicates identical concurrent submissions into one underlying run.
//
// Endpoints:
//
//	GET    /scenarios                     registry listing with tags
//	POST   /jobs                          {"scenario": "fig8", "options": {"steps": 2}}
//	GET    /jobs                          all jobs, newest last
//	GET    /jobs/{id}                     status + progress events
//	GET    /jobs/{id}/artifact?format=f   f in text|json|csv
//	DELETE /jobs/{id}                     cancel at the next step boundary
//	GET    /healthz                       liveness
//	GET    /stats                         scheduler occupancy + cache hits/misses
//
// With -telemetry DIR every executed job also persists its run events
// (rank timelines, step and DLB-migration markers, scheduler admission)
// into a chunked on-disk store, served back at:
//
//	GET    /jobs/{id}/trace?from=&to=&rank=   stored rows of the job's run
//	GET    /jobs/{id}/phases                  per-phase makespan + Ln table
//	GET    /telemetry/runs                    recorded runs, newest first
//	GET    /telemetry/runs/{run}?from=&to=&rank=
//
// The store survives restarts (crash-truncated chunks are recovered on
// open) and is readable offline with `traceview -store DIR`.
//
// Example:
//
//	respirad -addr :8080 -capacity 1536 -queue 64 -ttl 15m -telemetry /var/lib/respirad/telemetry
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	_ "repro" // populate the default scenario registry
	"repro/internal/service"
	"repro/internal/tasking"
	"repro/internal/telemetry"
	"repro/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	capacity := flag.Int64("capacity", 0, "scheduler cost capacity (0 = 2x one default measured run)")
	queue := flag.Int("queue", 64, "max jobs waiting for capacity before POST /jobs returns 429")
	ttl := flag.Duration("ttl", 15*time.Minute, "artifact cache TTL")
	workers := flag.Int("workers", runtime.NumCPU(), "shared runner pool workers")
	telemetryDir := flag.String("telemetry", "", "persist run telemetry into this store directory (empty = off)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "respirad:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := scenario.CheckNonNegative("capacity", int(*capacity)); err != nil {
		fail(err)
	}
	if err := scenario.CheckNonNegative("queue", *queue); err != nil {
		fail(err)
	}
	if err := scenario.CheckPositive("workers", *workers); err != nil {
		fail(err)
	}
	if *ttl <= 0 {
		fail(fmt.Errorf("ttl must be positive, got %v", *ttl))
	}

	var tstore *telemetry.Store
	if *telemetryDir != "" {
		st, err := telemetry.OpenDir(*telemetryDir)
		if err != nil {
			fail(err)
		}
		tstore = st
	}

	pool := tasking.NewPool(*workers)
	defer pool.Close()
	srv := service.New(service.Config{
		Capacity:   *capacity,
		MaxQueue:   *queue,
		CacheTTL:   *ttl,
		RunnerPool: pool,
		Telemetry:  tstore,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "respirad: "+format+"\n", args...)
		},
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "respirad: serving %d scenarios on %s (queue %d, ttl %v, %d pool workers)\n",
		len(scenario.Default.Names()), *addr, *queue, *ttl, *workers)
	if tstore != nil {
		fmt.Fprintf(os.Stderr, "respirad: recording run telemetry into %s (%d runs on open)\n",
			*telemetryDir, tstore.RunCount())
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "respirad:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "respirad: shutting down")
		srv.Close() // cancel in-flight jobs at their next step boundary
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx) //nolint:errcheck
	}
}
