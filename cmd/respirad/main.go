// Command respirad serves the scenario registry over HTTP as a
// long-running job service: submit a scenario with optional overrides,
// get a job ID, poll status and progress, fetch the typed artifact as
// text, JSON, or CSV, cancel mid-run. A bounded cost/capacity scheduler
// queues jobs FIFO when the process is saturated (and rejects with 429
// once the queue is full), and an expiring single-flight artifact cache
// deduplicates identical concurrent submissions into one underlying run.
//
// Endpoints:
//
//	GET    /scenarios                     registry listing with tags
//	POST   /jobs                          {"scenario": "fig8", "options": {"steps": 2}}
//	GET    /jobs                          all jobs, newest last
//	GET    /jobs/{id}                     status + progress events
//	GET    /jobs/{id}/artifact?format=f   f in text|json|csv
//	DELETE /jobs/{id}                     cancel at the next step boundary
//	GET    /healthz                       liveness ("ok", "degraded", "draining")
//	GET    /stats                         scheduler occupancy + cache hits/misses
//	GET    /admin/integrity               scrub checkpoints and telemetry, per-file verdicts
//
// With -telemetry DIR every executed job also persists its run events
// (rank timelines, step and DLB-migration markers, scheduler admission)
// into a chunked on-disk store, served back at:
//
//	GET    /jobs/{id}/trace?from=&to=&rank=   stored rows of the job's run
//	GET    /jobs/{id}/phases                  per-phase makespan + Ln table
//	GET    /telemetry/runs                    recorded runs, newest first
//	GET    /telemetry/runs/{run}?from=&to=&rank=
//
// The store survives restarts (crash-truncated chunks are recovered on
// open) and is readable offline with `traceview -store DIR`.
// -telemetry-max-runs N bounds retention: once a job finishes, runs
// past the N newest are deleted, except runs of jobs that still have
// checkpoints on disk (interrupted but resumable).
//
// Fault tolerance: with -checkpoint DIR, accepted jobs write a manifest
// and their simulations checkpoint every -checkpoint-every steps, so a
// killed process resumes on restart — manifests are resubmitted under
// their original IDs and interrupted runs continue mid-simulation.
// -watchdog bounds every blocking exchange of every simulation; a
// stalled rank surfaces as a typed error, and -retries N retries such
// transient failures with capped exponential backoff. On SIGTERM the
// server drains: new submissions get 503 + Retry-After while running
// jobs finish (bounded by -drain-timeout), checkpointing what doesn't.
//
// Example:
//
//	respirad -addr :8080 -capacity 1536 -queue 64 -ttl 15m \
//	  -telemetry /var/lib/respirad/telemetry -telemetry-max-runs 1000 \
//	  -checkpoint /var/lib/respirad/ckpt -watchdog 30s -retries 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	_ "repro" // populate the default scenario registry
	"repro/internal/service"
	"repro/internal/tasking"
	"repro/internal/telemetry"
	"repro/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	capacity := flag.Int64("capacity", 0, "scheduler cost capacity (0 = 2x one default measured run)")
	queue := flag.Int("queue", 64, "max jobs waiting for capacity before POST /jobs returns 429")
	ttl := flag.Duration("ttl", 15*time.Minute, "artifact cache TTL")
	workers := flag.Int("workers", runtime.NumCPU(), "shared runner pool workers")
	telemetryDir := flag.String("telemetry", "", "persist run telemetry into this store directory (empty = off)")
	maxRuns := flag.Int("telemetry-max-runs", 0, "retain at most N telemetry runs, pruning the oldest whose jobs hold no checkpoints (0 = keep all)")
	ckptDir := flag.String("checkpoint", "", "job manifests and simulation checkpoints directory: jobs survive restarts and resume mid-run (empty = off)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint capture period in simulation steps (0 = default 25)")
	ckptKeep := flag.Int("checkpoint-keep", 0, "snapshot generations retained per run; resume falls back past corrupt ones (0 = default 2)")
	tverify := flag.Bool("telemetry-verify", false, "verify chunk checksums on every telemetry read; corrupt chunks surface as errors instead of bad rows")
	watchdog := flag.Duration("watchdog", 0, "per-operation stall bound for simulation exchanges; stalled ranks fail fast with a typed error (0 = off)")
	retries := flag.Int("retries", 0, "retry a job's transient failures (stalls, injected faults) up to N times with capped exponential backoff")
	deadline := flag.Duration("deadline", 0, "default per-job deadline for jobs that send no deadlineMs (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for running jobs before shutting down")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "respirad:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := scenario.CheckNonNegative("capacity", int(*capacity)); err != nil {
		fail(err)
	}
	if err := scenario.CheckNonNegative("queue", *queue); err != nil {
		fail(err)
	}
	if err := scenario.CheckPositive("workers", *workers); err != nil {
		fail(err)
	}
	if *ttl <= 0 {
		fail(fmt.Errorf("ttl must be positive, got %v", *ttl))
	}
	for name, v := range map[string]int{
		"telemetry-max-runs": *maxRuns, "checkpoint-every": *ckptEvery,
		"checkpoint-keep": *ckptKeep, "retries": *retries,
	} {
		if err := scenario.CheckNonNegative(name, v); err != nil {
			fail(err)
		}
	}
	if *watchdog < 0 || *deadline < 0 || *drainTimeout < 0 {
		fail(fmt.Errorf("watchdog, deadline, and drain-timeout must be nonnegative"))
	}

	var tstore *telemetry.Store
	if *telemetryDir != "" {
		var opts []telemetry.Option
		if *tverify {
			opts = append(opts, telemetry.WithVerifyOnRead())
		}
		st, err := telemetry.OpenDir(*telemetryDir, opts...)
		if err != nil {
			fail(err)
		}
		tstore = st
	}

	pool := tasking.NewPool(*workers)
	defer pool.Close()
	srv := service.New(service.Config{
		Capacity:         *capacity,
		MaxQueue:         *queue,
		CacheTTL:         *ttl,
		RunnerPool:       pool,
		Telemetry:        tstore,
		TelemetryMaxRuns: *maxRuns,
		MaxRetries:       *retries,
		DefaultDeadline:  *deadline,
		CheckpointDir:    *ckptDir,
		CheckpointEvery:  *ckptEvery,
		CheckpointKeep:   *ckptKeep,
		Watchdog:         *watchdog,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "respirad: "+format+"\n", args...)
		},
	})

	// Resubmit jobs the previous process left behind before opening the
	// listener, so their old URLs answer from the first request.
	if recovered := srv.Recover(); len(recovered) > 0 {
		fmt.Fprintf(os.Stderr, "respirad: recovered %d interrupted jobs from %s\n", len(recovered), *ckptDir)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "respirad: serving %d scenarios on %s (queue %d, ttl %v, %d pool workers)\n",
		len(scenario.Default.Names()), *addr, *queue, *ttl, *workers)
	if tstore != nil {
		fmt.Fprintf(os.Stderr, "respirad: recording run telemetry into %s (%d runs on open)\n",
			*telemetryDir, tstore.RunCount())
	}
	if *ckptDir != "" {
		fmt.Fprintf(os.Stderr, "respirad: checkpointing jobs into %s (every %d steps)\n", *ckptDir, func() int {
			if *ckptEvery > 0 {
				return *ckptEvery
			}
			return 25
		}())
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "respirad:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Drain: reject new submissions with 503 + Retry-After while
		// running jobs finish. A second signal, or the drain timeout,
		// cancels what is left — with -checkpoint set those jobs resume
		// on the next start.
		srv.BeginDrain()
		fmt.Fprintf(os.Stderr, "respirad: draining %d active jobs (up to %v; signal again to stop now)\n",
			srv.ActiveJobs(), *drainTimeout)
		stop() // restore default signal handling: a second SIGTERM kills the wait below
		drained := time.After(*drainTimeout)
		tick := time.NewTicker(100 * time.Millisecond)
	wait:
		for srv.ActiveJobs() > 0 {
			select {
			case <-drained:
				break wait
			case <-tick.C:
			}
		}
		tick.Stop()
		srv.Close() // cancel whatever is left at its next step boundary
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx) //nolint:errcheck
	}
}
