// Command respira runs a real (laptop-scale) CFPD respiratory simulation:
// airway mesh generation, distributed Navier-Stokes, Lagrangian particle
// transport — with a choice of execution mode, assembly strategy and DLB,
// mirroring how the paper's Alya runs are configured.
//
// Examples:
//
//	respira -ranks 8 -steps 5 -particles 2000
//	respira -mode coupled -fluid 6 -parts 2 -dlb
//	respira -strategy coloring -threads 2 -gens 3 -trace
//	respira -inflow breathing:0.0008 -inject-every 1 -steps 4
//	respira -sweep -sweep-d 2.5e-6,10e-6 -sweep-q 0.9,1.5
//	respira -steps 40 -checkpoint /tmp/run.ckpt -checkpoint-every 10
//	respira -verify /var/lib/respirad/ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/coupling"
	"repro/internal/integrity"
	"repro/scenario"
)

func main() {
	mode := flag.String("mode", "sync", "execution mode: sync or coupled")
	ranks := flag.Int("ranks", 4, "MPI ranks (sync mode)")
	fluid := flag.Int("fluid", 3, "fluid ranks (coupled mode)")
	parts := flag.Int("parts", 1, "particle ranks (coupled mode)")
	steps := flag.Int("steps", 3, "time steps")
	particles := flag.Int("particles", 1000, "particles injected at step 1")
	strategy := flag.String("strategy", "multidep", "assembly strategy: serial, atomics, coloring, multidep")
	threads := flag.Int("threads", 1, "OpenMP-like threads per rank")
	gens := flag.Int("gens", 2, "bronchial generations of the airway mesh")
	useDLB := flag.Bool("dlb", false, "enable dynamic load balancing")
	ranksPerNode := flag.Int("ranks-per-node", 0, "ranks per node (0 = all on one node)")
	showTrace := flag.Bool("trace", false, "print the phase timeline")
	inflow := flag.String("inflow", "", "inlet waveform: steady, breathing:<period>, or table:<t>=<s>,... (empty = constant inflow)")
	injectEvery := flag.Int("inject-every", 0, "re-release particles every k steps (0 = single step-0 bolus)")
	sweep := flag.Bool("sweep", false, "run a dosage sweep (one simulation per grid point) instead of a single run")
	sweepD := flag.String("sweep-d", "", "sweep axis: comma-separated particle diameters in meters (implies -sweep)")
	sweepQ := flag.String("sweep-q", "", "sweep axis: comma-separated inlet face speeds in m/s (implies -sweep)")
	sweepG := flag.String("sweep-g", "", "sweep axis: comma-separated mesh generations (implies -sweep)")
	ckptPath := flag.String("checkpoint", "", "checkpoint the run into this file and resume from it when present (single-run mode)")
	ckptEvery := flag.Int("checkpoint-every", 10, "checkpoint capture period in steps (with -checkpoint)")
	ckptKeep := flag.Int("checkpoint-keep", 2, "snapshot generations retained per run; resume falls back past corrupt ones (with -checkpoint)")
	verify := flag.String("verify", "", "offline integrity scrub: verify every checkpoint and telemetry chunk under this directory, print per-file verdicts, and exit (1 if anything is corrupt or quarantined)")
	watchdog := flag.Duration("watchdog", 0, "stall bound per blocking exchange; a stuck rank fails the run with a typed error (0 = off)")
	flag.Parse()

	if *verify != "" {
		os.Exit(runVerify(*verify))
	}

	// Validate every flag before any simulation work: nonsensical counts
	// (-steps -1, -gens 0, ...) exit 2 with a usage message, the same
	// rules the respirad service applies to POST /jobs options (400).
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "respira:", err)
		flag.Usage()
		os.Exit(2)
	}
	for _, c := range []struct {
		name string
		v    int
		fn   func(string, int) error
	}{
		{"ranks", *ranks, scenario.CheckPositive},
		{"fluid", *fluid, scenario.CheckPositive},
		{"parts", *parts, scenario.CheckPositive},
		{"steps", *steps, scenario.CheckPositive},
		{"particles", *particles, scenario.CheckNonNegative},
		{"threads", *threads, scenario.CheckPositive},
		{"gens", *gens, scenario.CheckPositive},
		{"ranks-per-node", *ranksPerNode, scenario.CheckNonNegative},
		{"inject-every", *injectEvery, scenario.CheckNonNegative},
		{"checkpoint-every", *ckptEvery, scenario.CheckPositive},
		{"checkpoint-keep", *ckptKeep, scenario.CheckPositive},
	} {
		if err := c.fn(c.name, c.v); err != nil {
			usage(err)
		}
	}
	runMode, err := scenario.ParseMode(*mode)
	if err != nil {
		usage(err)
	}
	runStrategy, err := scenario.ParseStrategy(*strategy)
	if err != nil {
		usage(err)
	}
	if *watchdog < 0 {
		usage(fmt.Errorf("watchdog must be nonnegative, got %v", *watchdog))
	}
	var waveform scenario.Params
	if *inflow != "" {
		w, err := scenario.ParseWaveform(*inflow)
		if err != nil {
			usage(err)
		}
		waveform.Inflow = w
	}

	if *sweep || *sweepD != "" || *sweepQ != "" || *sweepG != "" {
		// Sweep mode runs the registered "sweep" scenario: a grid of
		// full simulations with per-point mesh/partition arena reuse.
		// Only explicitly set flags override the sweep's per-point
		// defaults (2 ranks, 2 steps, 400 particles per point).
		p := waveform
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "ranks":
				p.Ranks = *ranks
			case "steps":
				p.Steps = *steps
			case "particles":
				p.Particles = *particles
			case "threads":
				p.Workers = *threads
			}
		})
		if *sweepD != "" {
			p.SweepDiameters = parseAxisFloats("sweep-d", *sweepD, usage)
		}
		if *sweepQ != "" {
			p.SweepFlows = parseAxisFloats("sweep-q", *sweepQ, usage)
		}
		if *sweepG != "" {
			p.SweepGens = parseAxisInts("sweep-g", *sweepG, usage)
		}
		if err := runDosageSweep(p); err != nil {
			fmt.Fprintln(os.Stderr, "respira:", err)
			os.Exit(1)
		}
		return
	}

	cfg := repro.DefaultSimulationConfig()
	cfg.Mesh.Generations = *gens
	cfg.Run.Steps = *steps
	cfg.Run.NumParticles = *particles
	cfg.Run.UseDLB = *useDLB
	cfg.Run.WorkersPerRank = *threads
	if *ranksPerNode > 0 {
		cfg.Run.RanksPerNode = *ranksPerNode
	}

	cfg.Run.Mode = runMode
	switch runMode {
	case coupling.Synchronous:
		cfg.Run.FluidRanks = *ranks
		cfg.Run.ParticleRanks = 0
		if cfg.Run.RanksPerNode == 0 {
			cfg.Run.RanksPerNode = *ranks
		}
	case coupling.Coupled:
		cfg.Run.FluidRanks = *fluid
		cfg.Run.ParticleRanks = *parts
		if cfg.Run.RanksPerNode == 0 {
			cfg.Run.RanksPerNode = *fluid + *parts
		}
	}
	cfg.Run.NS.Strategy = runStrategy
	if waveform.Inflow != nil {
		cfg.Run.NS.Inflow = waveform.Inflow
	}
	cfg.Run.InjectEvery = *injectEvery
	cfg.Run.Watchdog = *watchdog
	if *ckptPath != "" {
		cfg.Run.Checkpoint = &checkpoint.Plan{
			Path: *ckptPath, Every: *ckptEvery, Resume: true, Keep: *ckptKeep,
			OnError: func(err error) { fmt.Fprintln(os.Stderr, "respira: checkpoint:", err) },
		}
	}

	res, err := repro.RunSimulation(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respira:", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())
	if *showTrace {
		fmt.Println()
		fmt.Print(res.Result.Trace.Render(100, 24))
	}
}

// runVerify is the -verify DIR offline scrub: per-file verdicts on
// stdout, exit 1 when anything is corrupt or quarantined (the same
// criterion as respirad's GET /admin/integrity ok field).
func runVerify(dir string) int {
	vs, err := integrity.ScanDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respira: verify:", err)
		return 1
	}
	if len(vs) == 0 {
		fmt.Printf("%s: no checkpoints or telemetry runs found\n", dir)
		return 0
	}
	for _, v := range vs {
		line := fmt.Sprintf("%-11s %-10s %s", v.Status, v.Kind, v.File)
		if v.Detail != "" {
			line += "  (" + v.Detail + ")"
		}
		fmt.Println(line)
	}
	if integrity.AnyBad(vs) {
		return 1
	}
	return 0
}

// runDosageSweep executes the registered "sweep" scenario with p and
// prints its table.
func runDosageSweep(p scenario.Params) error {
	scs, err := scenario.Default.Select([]string{repro.ScenarioSweep})
	if err != nil {
		return err
	}
	r := &scenario.Runner{}
	results, err := r.Run(context.Background(), scs, p)
	if err != nil {
		return err
	}
	if results[0].Err != nil {
		return results[0].Err
	}
	fmt.Println(results[0].Artifact.Text())
	return nil
}

// parseAxisFloats parses a comma-separated sweep axis of positive floats,
// exiting through usage on a bad value.
func parseAxisFloats(name, s string, usage func(error)) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || !(v > 0) {
			usage(fmt.Errorf("-%s: want positive numbers, got %q", name, f))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		usage(fmt.Errorf("-%s: empty list", name))
	}
	return out
}

// parseAxisInts parses a comma-separated sweep axis of positive ints,
// exiting through usage on a bad value.
func parseAxisInts(name, s string, usage func(error)) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			usage(fmt.Errorf("-%s: want positive integers, got %q", name, f))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		usage(fmt.Errorf("-%s: empty list", name))
	}
	return out
}
