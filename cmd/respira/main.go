// Command respira runs a real (laptop-scale) CFPD respiratory simulation:
// airway mesh generation, distributed Navier-Stokes, Lagrangian particle
// transport — with a choice of execution mode, assembly strategy and DLB,
// mirroring how the paper's Alya runs are configured.
//
// Examples:
//
//	respira -ranks 8 -steps 5 -particles 2000
//	respira -mode coupled -fluid 6 -parts 2 -dlb
//	respira -strategy coloring -threads 2 -gens 3 -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/coupling"
	"repro/scenario"
)

func main() {
	mode := flag.String("mode", "sync", "execution mode: sync or coupled")
	ranks := flag.Int("ranks", 4, "MPI ranks (sync mode)")
	fluid := flag.Int("fluid", 3, "fluid ranks (coupled mode)")
	parts := flag.Int("parts", 1, "particle ranks (coupled mode)")
	steps := flag.Int("steps", 3, "time steps")
	particles := flag.Int("particles", 1000, "particles injected at step 1")
	strategy := flag.String("strategy", "multidep", "assembly strategy: serial, atomics, coloring, multidep")
	threads := flag.Int("threads", 1, "OpenMP-like threads per rank")
	gens := flag.Int("gens", 2, "bronchial generations of the airway mesh")
	useDLB := flag.Bool("dlb", false, "enable dynamic load balancing")
	ranksPerNode := flag.Int("ranks-per-node", 0, "ranks per node (0 = all on one node)")
	showTrace := flag.Bool("trace", false, "print the phase timeline")
	flag.Parse()

	// Validate every flag before any simulation work: nonsensical counts
	// (-steps -1, -gens 0, ...) exit 2 with a usage message, the same
	// rules the respirad service applies to POST /jobs options (400).
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "respira:", err)
		flag.Usage()
		os.Exit(2)
	}
	for _, c := range []struct {
		name string
		v    int
		fn   func(string, int) error
	}{
		{"ranks", *ranks, scenario.CheckPositive},
		{"fluid", *fluid, scenario.CheckPositive},
		{"parts", *parts, scenario.CheckPositive},
		{"steps", *steps, scenario.CheckPositive},
		{"particles", *particles, scenario.CheckNonNegative},
		{"threads", *threads, scenario.CheckPositive},
		{"gens", *gens, scenario.CheckPositive},
		{"ranks-per-node", *ranksPerNode, scenario.CheckNonNegative},
	} {
		if err := c.fn(c.name, c.v); err != nil {
			usage(err)
		}
	}
	runMode, err := scenario.ParseMode(*mode)
	if err != nil {
		usage(err)
	}
	runStrategy, err := scenario.ParseStrategy(*strategy)
	if err != nil {
		usage(err)
	}

	cfg := repro.DefaultSimulationConfig()
	cfg.Mesh.Generations = *gens
	cfg.Run.Steps = *steps
	cfg.Run.NumParticles = *particles
	cfg.Run.UseDLB = *useDLB
	cfg.Run.WorkersPerRank = *threads
	if *ranksPerNode > 0 {
		cfg.Run.RanksPerNode = *ranksPerNode
	}

	cfg.Run.Mode = runMode
	switch runMode {
	case coupling.Synchronous:
		cfg.Run.FluidRanks = *ranks
		cfg.Run.ParticleRanks = 0
		if cfg.Run.RanksPerNode == 0 {
			cfg.Run.RanksPerNode = *ranks
		}
	case coupling.Coupled:
		cfg.Run.FluidRanks = *fluid
		cfg.Run.ParticleRanks = *parts
		if cfg.Run.RanksPerNode == 0 {
			cfg.Run.RanksPerNode = *fluid + *parts
		}
	}
	cfg.Run.NS.Strategy = runStrategy

	res, err := repro.RunSimulation(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respira:", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())
	if *showTrace {
		fmt.Println()
		fmt.Print(res.Result.Trace.Render(100, 24))
	}
}
