package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/scenario"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(context.Background(), args, &out, &errb)
	return out.String(), errb.String(), err
}

// An unknown -scenario must fail loudly and list the registry (the
// benchfig contract, extended here to traceview).
func TestUnknownScenarioErrors(t *testing.T) {
	_, _, err := runCLI(t, "-scenario", "nosuch")
	if err == nil {
		t.Fatal("unknown -scenario must error")
	}
	for _, want := range []string{`"nosuch"`, "fig2", "quickstart"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q should mention %q", err, want)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	if _, _, err := runCLI(t, "-store", "x", "-url", "http://h"); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-store with -url = %v", err)
	}
	if _, _, err := runCLI(t, "-list"); err == nil ||
		!strings.Contains(err.Error(), "need a source") {
		t.Fatalf("bare -list = %v", err)
	}
	if _, _, err := runCLI(t, "-run", "job-1"); err == nil ||
		!strings.Contains(err.Error(), "need a source") {
		t.Fatalf("bare -run = %v", err)
	}
	if _, _, err := runCLI(t, "-url", "http://h", "-scenario", "fig2"); err == nil ||
		!strings.Contains(err.Error(), "-url") {
		t.Fatalf("-url with -scenario = %v", err)
	}
	if _, _, err := runCLI(t, "stray"); err == nil {
		t.Fatal("positional arguments must error")
	}
}

// The full local loop: run a scenario fresh while recording into a
// store, then list and re-render the persisted runs from that store.
func TestRecordListAndRenderStoredRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tstore")
	fresh, errb, err := runCLI(t,
		"-scenario", "fig2", "-store", dir,
		"-ranks", "4", "-steps", "1", "-particles", "200", "-mesh", "2",
		"-width", "60", "-rows", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fresh, "timeline:") {
		t.Fatalf("fresh render missing timeline:\n%s", fresh)
	}
	if !strings.Contains(errb, "recorded") {
		t.Fatalf("stderr should note the recorded runs: %q", errb)
	}

	list, _, err := runCLI(t, "-store", dir, "-list")
	if err != nil {
		t.Fatal(err)
	}
	// fig2 calibrates, so one probe run plus the measured run.
	if !strings.Contains(list, "run-000001") || !strings.Contains(list, "run-000002") {
		t.Fatalf("listing missing recorded runs:\n%s", list)
	}
	if !strings.Contains(list, "fig2") || !strings.Contains(list, "complete") {
		t.Fatalf("listing missing scenario/state columns:\n%s", list)
	}

	// Default render picks the newest run; -run selects explicitly.
	newest, _, err := runCLI(t, "-store", dir, "-width", "60", "-rows", "4")
	if err != nil {
		t.Fatal(err)
	}
	picked, _, err := runCLI(t, "-store", dir, "-run", "run-000002", "-width", "60", "-rows", "4")
	if err != nil {
		t.Fatal(err)
	}
	if newest != picked {
		t.Fatalf("default render is not the newest run:\n--- default\n%s--- run-000002\n%s", newest, picked)
	}
	for _, want := range []string{"run run-000002", "timeline:", "Phase", "L_n"} {
		if !strings.Contains(picked, want) {
			t.Fatalf("stored render missing %q:\n%s", want, picked)
		}
	}

	if _, _, err := runCLI(t, "-store", dir, "-run", "nope"); err == nil {
		t.Fatal("unknown -run must error")
	}
}

// Remote mode renders the same bytes the store mode does, via a live
// server's /telemetry endpoints.
func TestRemoteRenderMatchesStored(t *testing.T) {
	st := telemetry.NewMemStore()
	w, err := st.BeginRun(telemetry.RunMeta{Run: "job-1", Mode: "synchronous", Ranks: 2, Steps: 1, Makespan: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(
		telemetry.Row{Rank: 0, Kind: telemetry.KindPhase, Phase: trace.PhaseAssembly, Start: 0, End: 2},
		telemetry.Row{Rank: 1, Kind: telemetry.KindPhase, Phase: trace.PhaseParticles, Start: 0, End: 1},
	)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Registry: scenario.NewRegistry(), Telemetry: st})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	remote, _, err := runCLI(t, "-url", ts.URL, "-run", "job-1", "-width", "60", "-rows", "4")
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	tr, meta, err := st.Trace("job-1")
	if err != nil {
		t.Fatal(err)
	}
	render(&local, tr, meta, 60, 4)
	if remote != local.String() {
		t.Fatalf("remote render differs from local:\n--- remote\n%s--- local\n%s", remote, local.String())
	}

	list, _, err := runCLI(t, "-url", ts.URL, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list, "job-1") {
		t.Fatalf("remote listing missing job-1:\n%s", list)
	}
	// Server error bodies surface in the CLI error.
	if _, _, err := runCLI(t, "-url", ts.URL, "-run", "nope"); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown remote run = %v", err)
	}
}
