// Command traceview renders the Paraver-style timeline of a quick
// respiratory run — the reproduction's stand-in for opening an Extrae
// trace in Paraver (the paper's Figure 2 workflow).
//
// Usage:
//
//	traceview [-ranks N] [-steps N] [-particles N] [-width N] [-rows N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	ranks := flag.Int("ranks", 32, "MPI ranks")
	steps := flag.Int("steps", 2, "time steps")
	particles := flag.Int("particles", 5000, "particles injected")
	width := flag.Int("width", 110, "timeline width (chars)")
	rows := flag.Int("rows", 32, "max rank rows shown")
	flag.Parse()

	opts := repro.DefaultTable1Options()
	opts.Ranks = *ranks
	opts.Steps = *steps
	opts.Particles = *particles
	opts.MeshGen = 3

	out, err := repro.Figure2(opts, *width, *rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
