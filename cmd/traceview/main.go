// Command traceview renders Paraver-style timelines — the
// reproduction's stand-in for opening an Extrae trace in Paraver (the
// paper's Figure 2 workflow). It reads three sources:
//
//   - A persistent telemetry store directory written by respirad
//     (-store DIR): list recorded runs, or re-render one byte-identically
//     to the in-memory render, with its per-phase makespan/imbalance
//     table.
//   - A live respirad server (-url http://host:port): the same listing
//     and rendering over the /telemetry endpoints.
//   - A fresh run of any registry scenario (-scenario NAME, the
//     default mode): render its artifact directly, and record the run
//     into -store when one is given.
//
// Usage:
//
//	traceview                                    # fresh fig2 run
//	traceview -scenario quickstart -ranks 8
//	traceview -store /var/lib/respirad/telemetry -list
//	traceview -store DIR -run job-3              # render a stored run
//	traceview -url http://localhost:8080 -list
//	traceview -url http://localhost:8080 -run job-3
//
// Unknown -scenario names fail with the list of registered scenarios.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	_ "repro" // populate the default scenario registry
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

// run is the whole CLI, separated from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		store = fs.String("store", "", "telemetry store directory to render from (or record into with -scenario)")
		url   = fs.String("url", "", "base URL of a live respirad server to query instead of a store directory")
		list  = fs.Bool("list", false, "list recorded runs and exit (-store or -url mode)")
		runID = fs.String("run", "", "run ID to render (default: the newest recorded run)")
		scen  = fs.String("scenario", "fig2", "registry scenario to run fresh (ignored with -url or a bare -store)")

		ranks     = fs.Int("ranks", 32, "MPI ranks (fresh runs)")
		steps     = fs.Int("steps", 2, "time steps (fresh runs)")
		particles = fs.Int("particles", 5000, "particles injected (fresh runs)")
		mesh      = fs.Int("mesh", 3, "airway mesh generations (fresh runs)")
		width     = fs.Int("width", 110, "timeline width (chars)")
		rows      = fs.Int("rows", 32, "max rank rows shown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *url != "" && *store != "" {
		return fmt.Errorf("-store and -url are mutually exclusive")
	}
	// A scenario run happens only when the user asked for one (or gave
	// neither source); a bare -store/-url is a pure reader.
	scenarioSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "scenario" {
			scenarioSet = true
		}
	})

	switch {
	case *url != "":
		if scenarioSet {
			return fmt.Errorf("-scenario runs locally; drop it when querying a server with -url")
		}
		return runRemote(*url, *list, *runID, *width, *rows, stdout)
	case *store != "" && !scenarioSet:
		st, err := telemetry.OpenDir(*store)
		if err != nil {
			return err
		}
		return runStored(st, *list, *runID, *width, *rows, stdout)
	default:
		if *list || *runID != "" {
			return fmt.Errorf("-list and -run need a source: -store DIR or -url URL")
		}
		params := freshParams(fs, *ranks, *steps, *particles, *mesh, *width, *rows)
		return runFresh(ctx, *scen, *store, params, stdout, stderr)
	}
}

// freshParams passes only explicitly set flags through, so flag
// defaults do not override a scenario's own defaults (matching
// benchfig).
func freshParams(fs *flag.FlagSet, ranks, steps, particles, mesh, width, rows int) scenario.Params {
	var p scenario.Params
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "ranks":
			p.Ranks = ranks
		case "steps":
			p.Steps = steps
		case "particles":
			p.Particles = particles
		case "mesh":
			p.MeshGenerations = mesh
		case "width", "rows":
			p.Width, p.Rows = width, rows
		}
	})
	return p
}

// namedSink stamps the scenario name onto runs the simulation records,
// so store listings can say what produced each run.
type namedSink struct {
	st       *telemetry.Store
	scenario string
}

func (s namedSink) BeginRun(meta telemetry.RunMeta) (*telemetry.RunWriter, error) {
	if meta.Scenario == "" {
		meta.Scenario = s.scenario
	}
	return s.st.BeginRun(meta)
}

// runFresh executes one registry scenario and prints its artifact. With
// a store directory the executed simulations are also recorded there
// (the store rides the context down to coupling.RunContext).
func runFresh(ctx context.Context, name, storeDir string, params scenario.Params, stdout, stderr io.Writer) error {
	sc, err := scenario.Default.Get(name) // unknown names list the registry
	if err != nil {
		return err
	}
	if storeDir != "" {
		st, err := telemetry.OpenDir(storeDir)
		if err != nil {
			return err
		}
		before := st.RunCount()
		ctx = telemetry.ContextWithSink(ctx, namedSink{st: st, scenario: name})
		defer func() {
			if n := st.RunCount() - before; n > 0 {
				fmt.Fprintf(stderr, "traceview: recorded %d run(s) into %s\n", n, storeDir)
			}
		}()
	}
	r := &scenario.Runner{}
	results, err := r.Run(ctx, []scenario.Scenario{sc}, params)
	if err != nil && (len(results) == 0 || results[0].Err == nil) {
		return err
	}
	if res := results[0]; res.Err != nil {
		return res.Err
	}
	fmt.Fprint(stdout, results[0].Artifact.Text())
	return nil
}

// runStored lists or renders runs of an on-disk store.
func runStored(st *telemetry.Store, list bool, runID string, width, rows int, stdout io.Writer) error {
	runs := st.Runs()
	if list {
		listRuns(stdout, runs)
		return nil
	}
	if runID == "" {
		if len(runs) == 0 {
			return fmt.Errorf("store holds no runs")
		}
		runID = runs[len(runs)-1].Run
	}
	tr, meta, err := st.Trace(runID)
	if err != nil {
		return err
	}
	render(stdout, tr, meta, width, rows)
	return nil
}

// runRemote is runStored over a live server's /telemetry endpoints.
func runRemote(base string, list bool, runID string, width, rows int, stdout io.Writer) error {
	base = strings.TrimRight(base, "/")
	if list || runID == "" {
		var runs []telemetry.RunMeta
		if err := getJSON(base+"/telemetry/runs", &runs); err != nil {
			return err
		}
		if list {
			// The server lists newest first; the local listing prints
			// oldest first.
			for i, j := 0, len(runs)-1; i < j; i, j = i+1, j-1 {
				runs[i], runs[j] = runs[j], runs[i]
			}
			listRuns(stdout, runs)
			return nil
		}
		if len(runs) == 0 {
			return fmt.Errorf("server holds no runs")
		}
		runID = runs[0].Run
	}
	var tw service.TraceWire
	if err := getJSON(base+"/telemetry/runs/"+runID, &tw); err != nil {
		return err
	}
	telRows := make([]telemetry.Row, len(tw.Rows))
	for i, rw := range tw.Rows {
		telRows[i] = rw.Row()
	}
	render(stdout, telemetry.TraceFromRows(tw.Meta.Ranks, telRows), tw.Meta, width, rows)
	return nil
}

// getJSON fetches one endpoint into out, surfacing the server's JSON
// error body on non-200 statuses.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", url, e.Error)
		}
		return fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// listRuns prints one line per run, oldest first.
func listRuns(w io.Writer, runs []telemetry.RunMeta) {
	fmt.Fprintf(w, "%-20s %-12s %-12s %5s %5s %8s %-8s %s\n",
		"RUN", "SCENARIO", "MODE", "RANKS", "STEPS", "ROWS", "STATE", "CREATED")
	for _, m := range runs {
		state := "complete"
		if !m.Complete {
			state = "partial"
		}
		fmt.Fprintf(w, "%-20s %-12s %-12s %5d %5d %8d %-8s %s\n",
			m.Run, m.Scenario, m.Mode, m.Ranks, m.Steps, m.Rows, state,
			m.Created.Format(time.RFC3339))
	}
}

// render prints a stored run: a metadata header, the Paraver-style
// timeline (byte-identical to the in-memory render of the original
// run), and the per-phase makespan/imbalance table.
func render(w io.Writer, tr *trace.Trace, meta telemetry.RunMeta, width, rows int) {
	fmt.Fprintf(w, "run %s", meta.Run)
	if meta.Job != "" {
		fmt.Fprintf(w, "  job=%s", meta.Job)
	}
	if meta.Scenario != "" {
		fmt.Fprintf(w, "  scenario=%s", meta.Scenario)
	}
	fmt.Fprintf(w, "  mode=%s ranks=%d steps=%d makespan=%.4g\n\n", meta.Mode, meta.Ranks, meta.Steps, meta.Makespan)
	fmt.Fprint(w, tr.Render(width, rows))
	pw := service.PhasesFromTrace(tr, meta)
	if len(pw.Phases) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-16s %10s %8s %8s\n", "Phase", "max", "L_n", "%time")
	for _, p := range pw.Phases {
		fmt.Fprintf(w, "%-16s %10.4g %8.2f %7.1f%%\n", p.Phase, p.Max, p.Ln, p.Percent)
	}
}
