package repro

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/coupling"
	"repro/internal/mesh"
	"repro/internal/navierstokes"
	"repro/internal/partition"
	"repro/scenario"
)

// Sweep-family scenario names (tag "sweep"). These are the dosage-study
// workloads: instead of one configuration they run a grid of (particle
// diameter x inlet flow x mesh refinement) points and aggregate the
// per-point deposition efficiencies into one table — the kind of
// parameter study the paper's runtime optimizations exist to make cheap.
const (
	ScenarioSweep     = "sweep"
	ScenarioBreathing = "breathing"
)

// defaultSweepAxes is the default dosage grid: a fine (PM2.5-like) and a
// coarse (inhaler aerosol) species, a resting and a rapid inhalation
// flow, on the small two-generation airway. 2x2x1 = 4 points.
var defaultSweepAxes = scenario.SweepAxes{
	Diameters: []float64{2.5e-6, 10e-6},
	Flows:     []float64{0.9, 1.5},
	Gens:      []int{2},
}

// Per-point run shape of the sweep scenario (overridable via Params).
const (
	sweepPointRanks     = 2
	sweepPointSteps     = 2
	sweepPointParticles = 400
)

// sweepCost prices a sweep for the service's admission control: work is
// one full simulation per grid point, so cost scales with cardinality x
// ranks x steps rather than the flat single-run estimate.
func sweepCost(p scenario.Params) int64 {
	axes := p.SweepAxes(defaultSweepAxes)
	ranks := sweepPointRanks
	if p.Ranks > 0 {
		ranks = p.Ranks
	}
	steps := sweepPointSteps
	if p.Steps > 0 {
		steps = p.Steps
	}
	return int64(axes.Cardinality()) * int64(ranks) * int64(steps)
}

func registerSweepScenarios() {
	reg := scenario.MustRegister

	reg(scenario.NewCosted(ScenarioSweep,
		"Dosage sweep: one full simulation per (diameter x inlet flow x mesh) grid point, deposition efficiency per point, mesh/partition arenas reused across points",
		[]string{"sweep", "measured", "table"},
		runSweep, sweepCost))
	reg(scenario.New(ScenarioBreathing,
		"Breathing cycle: sinusoidal inlet waveform with particles re-released every step at the waveform-scaled velocity",
		[]string{"sweep", "measured", "report"},
		runBreathing))
}

// runSweep executes the dosage grid. Points run sequentially on purpose:
// the mesh.Builder arena hands out a mesh that the NEXT build
// invalidates, and the partition.Scratch is single-threaded — the whole
// point of the arena is that a sweep builds many meshes/partitions per
// process without re-allocating, which requires one point in flight.
func runSweep(ctx context.Context, p scenario.Params) (*scenario.Artifact, error) {
	axes := p.SweepAxes(defaultSweepAxes)
	points := axes.Grid()
	if len(points) == 0 {
		return nil, fmt.Errorf("repro: sweep grid is empty")
	}

	builder := mesh.NewBuilder()
	scratch := partition.NewScratch()
	r := &scenario.Runner{Parallel: 1}
	rows, err := scenario.RunSweep(ctx, r, ScenarioSweep, points,
		func(ctx context.Context, pt scenario.SweepPoint) (scenario.TableRow, error) {
			mc := DefaultSimulationConfig().Mesh
			mc.Generations = pt.MeshGens
			m, err := builder.GenerateAirway(mc)
			if err != nil {
				return scenario.TableRow{}, err
			}
			rc := coupling.DefaultRunConfig()
			rc.FluidRanks = sweepPointRanks
			rc.Steps = sweepPointSteps
			rc.NumParticles = sweepPointParticles
			rc.Species.Diameter = pt.Diameter
			rc.NS.InletVelocity = mesh.Vec3{Z: -pt.Flow}
			rc.PartitionScratch = scratch
			p.ApplyRun(&rc)
			res, err := coupling.RunContext(ctx, m, rc)
			if err != nil {
				return scenario.TableRow{}, err
			}
			eff := 0.0
			if res.Injected > 0 {
				eff = float64(res.Deposited) / float64(res.Injected)
			}
			return scenario.TableRow{
				Label: pt.Label(),
				Values: []float64{
					pt.Diameter * 1e6, pt.Flow, float64(pt.MeshGens),
					float64(res.Injected), float64(res.Deposited),
					float64(res.Exited), float64(res.ActiveEnd), eff,
				},
			}, nil
		})
	if err != nil {
		return nil, err
	}

	tab := scenario.Table{
		Title:    fmt.Sprintf("dosage sweep — deposition efficiency over %d grid points", len(points)),
		LabelCol: scenario.Column{Name: "point", HeaderFmt: "%-24s", CellFmt: "%-24s"},
		Columns: []scenario.Column{
			{Name: "d_um", HeaderFmt: "%8s", CellFmt: "%8.3g"},
			{Name: "flow", HeaderFmt: "%8s", CellFmt: "%8.3g"},
			{Name: "gens", HeaderFmt: "%6s", CellFmt: "%6.0f"},
			{Name: "injected", HeaderFmt: "%10s", CellFmt: "%10.0f"},
			{Name: "deposited", HeaderFmt: "%11s", CellFmt: "%11.0f"},
			{Name: "exited", HeaderFmt: "%8s", CellFmt: "%8.0f"},
			{Name: "airborne", HeaderFmt: "%10s", CellFmt: "%10.0f"},
			{Name: "dep_eff", HeaderFmt: "%9s", CellFmt: "%9.4f"},
		},
		Rows: rows,
	}
	return &scenario.Artifact{
		Scenario: ScenarioSweep, Kind: scenario.KindTable,
		Title:  tab.Title,
		Tables: []scenario.Table{tab},
		Notes: []string{
			"one full simulation per row; mesh and partition builds reuse a shared arena across points",
		},
	}, nil
}

// runBreathing is the breathing-cycle workload: a sinusoidal inlet
// waveform (the run spans the inhalation half of the cycle) with a fresh
// particle release every step, each launched at that step's
// waveform-scaled inlet velocity. Deterministic across worker counts.
func runBreathing(ctx context.Context, p scenario.Params) (*scenario.Artifact, error) {
	cfg := DefaultSimulationConfig()
	cfg.Run.FluidRanks = 4
	cfg.Run.Steps = 4
	cfg.Run.NumParticles = 800
	cfg.Run.InjectEvery = 1
	p.ApplyMesh(&cfg.Mesh)
	p.ApplyRun(&cfg.Run)
	if cfg.Run.NS.Inflow == nil {
		// Default cycle: the configured run covers the inhalation half
		// (flow ramps up to the peak and back to zero).
		cfg.Run.NS.Inflow = navierstokes.BreathingWaveform{
			Period: 2 * float64(cfg.Run.Steps) * cfg.Run.NS.Props.Dt,
		}
	}

	res, err := RunSimulationContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	r := res.Result
	var sb strings.Builder
	sb.WriteString("breathing-cycle inflow — continuous dosing\n")
	fmt.Fprintf(&sb, "mesh: %s\n", res.Mesh)
	fmt.Fprintf(&sb, "waveform: %s, peak inlet speed %g m/s\n\n",
		cfg.Run.NS.Inflow, -cfg.Run.NS.InletVelocity.Z)
	fmt.Fprintf(&sb, "released over %d steps:  %6d particles\n", cfg.Run.Steps, r.Injected)
	fmt.Fprintf(&sb, "deposited on walls:     %6d\n", r.Deposited)
	fmt.Fprintf(&sb, "reached the deep lung:  %6d\n", r.Exited)
	fmt.Fprintf(&sb, "still airborne:         %6d\n\n", r.ActiveEnd)
	fmt.Fprintf(&sb, "virtual makespan: %.6g\n", r.Makespan)
	return &scenario.Artifact{
		Scenario: ScenarioBreathing, Kind: scenario.KindReport,
		Title:  "breathing-cycle inflow — continuous dosing",
		Report: sb.String(),
		Notes: []string{
			"each step's release is seeded seed+step and launched at the waveform-scaled inlet velocity of that simulation time",
		},
	}, nil
}
